package encoding

import (
	"testing"
	"testing/quick"

	"repro/internal/xhash"
)

var codecs = []Codec{Delta, Raw}

// randomSorted returns a strictly increasing slice derived from the seed.
func randomSorted(seed uint64, maxLen int) []uint32 {
	r := xhash.NewRNG(seed)
	n := r.Intn(maxLen + 1)
	seen := make(map[uint32]bool, n)
	out := make([]uint32, 0, n)
	for len(out) < n {
		v := r.Uint32() % uint32(4*maxLen+4)
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sortU32(out)
	return out
}

func sortU32(a []uint32) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j-1] > a[j]; j-- {
			a[j-1], a[j] = a[j], a[j-1]
		}
	}
}

func equal(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, codec := range codecs {
		if err := quick.Check(func(seed uint64) bool {
			elems := randomSorted(seed, 200)
			c := Encode(codec, elems)
			got := c.Decode(codec, nil)
			if len(elems) == 0 {
				return c.Empty() && len(got) == 0
			}
			return equal(got, elems) &&
				c.Count() == len(elems) &&
				c.First() == elems[0] &&
				c.Last() == elems[len(elems)-1]
		}, &quick.Config{MaxCount: 200}); err != nil {
			t.Fatalf("codec %v: %v", codec, err)
		}
	}
}

func TestEmptyChunk(t *testing.T) {
	var c Chunk
	if !c.Empty() || c.Count() != 0 || c.Bytes() != 0 {
		t.Fatal("nil chunk should be empty")
	}
	for _, codec := range codecs {
		if got := c.Decode(codec, nil); len(got) != 0 {
			t.Fatal("decode of empty chunk should be empty")
		}
		c.ForEach(codec, func(uint32) bool { t.Fatal("foreach on empty"); return true })
		if c.Contains(codec, 5) {
			t.Fatal("empty contains")
		}
	}
	if Encode(Delta, nil) != nil {
		t.Fatal("Encode(nil) should be nil")
	}
}

func TestForEachEarlyStop(t *testing.T) {
	c := Encode(Delta, []uint32{1, 2, 3, 4, 5})
	var seen []uint32
	c.ForEach(Delta, func(x uint32) bool {
		seen = append(seen, x)
		return x < 3
	})
	if !equal(seen, []uint32{1, 2, 3}) {
		t.Fatalf("seen = %v", seen)
	}
}

func TestContains(t *testing.T) {
	for _, codec := range codecs {
		elems := []uint32{10, 20, 30, 1000, 1_000_000}
		c := Encode(codec, elems)
		for _, e := range elems {
			if !c.Contains(codec, e) {
				t.Fatalf("codec %v: missing %d", codec, e)
			}
		}
		for _, e := range []uint32{0, 15, 999, 2_000_000} {
			if c.Contains(codec, e) {
				t.Fatalf("codec %v: spurious %d", codec, e)
			}
		}
	}
}

func TestSplitProperty(t *testing.T) {
	for _, codec := range codecs {
		if err := quick.Check(func(seed uint64, k uint32) bool {
			elems := randomSorted(seed, 100)
			k %= 500
			c := Encode(codec, elems)
			l, found, r := c.Split(codec, k)
			le := l.Decode(codec, nil)
			re := r.Decode(codec, nil)
			var wantL, wantR []uint32
			wantFound := false
			for _, e := range elems {
				switch {
				case e < k:
					wantL = append(wantL, e)
				case e > k:
					wantR = append(wantR, e)
				default:
					wantFound = true
				}
			}
			return equal(le, wantL) && equal(re, wantR) && found == wantFound
		}, &quick.Config{MaxCount: 300}); err != nil {
			t.Fatalf("codec %v: %v", codec, err)
		}
	}
}

func TestSetAlgebra(t *testing.T) {
	for _, codec := range codecs {
		if err := quick.Check(func(s1, s2 uint64) bool {
			a := Encode(codec, randomSorted(s1, 80))
			b := Encode(codec, randomSorted(s2, 80))
			union := Union(codec, a, b).Decode(codec, nil)
			diff := Difference(codec, a, b).Decode(codec, nil)
			inter := Intersect(codec, a, b).Decode(codec, nil)

			inA := map[uint32]bool{}
			for _, x := range a.Decode(codec, nil) {
				inA[x] = true
			}
			inB := map[uint32]bool{}
			for _, x := range b.Decode(codec, nil) {
				inB[x] = true
			}
			var wantU, wantD, wantI []uint32
			for x := uint32(0); x < 400; x++ {
				if inA[x] || inB[x] {
					wantU = append(wantU, x)
				}
				if inA[x] && !inB[x] {
					wantD = append(wantD, x)
				}
				if inA[x] && inB[x] {
					wantI = append(wantI, x)
				}
			}
			return equal(union, wantU) && equal(diff, wantD) && equal(inter, wantI)
		}, &quick.Config{MaxCount: 200}); err != nil {
			t.Fatalf("codec %v: %v", codec, err)
		}
	}
}

func TestInsertRemove(t *testing.T) {
	for _, codec := range codecs {
		c := Encode(codec, []uint32{5, 10})
		c = c.Insert(codec, 7)
		c = c.Insert(codec, 1)
		c = c.Insert(codec, 20)
		c = c.Insert(codec, 7) // duplicate: no-op
		if got := c.Decode(codec, nil); !equal(got, []uint32{1, 5, 7, 10, 20}) {
			t.Fatalf("codec %v: after inserts %v", codec, got)
		}
		c = c.Remove(codec, 5)
		c = c.Remove(codec, 99) // absent: no-op
		if got := c.Decode(codec, nil); !equal(got, []uint32{1, 7, 10, 20}) {
			t.Fatalf("codec %v: after removes %v", codec, got)
		}
		var empty Chunk
		if got := empty.Insert(codec, 3).Decode(codec, nil); !equal(got, []uint32{3}) {
			t.Fatalf("codec %v: insert into empty: %v", codec, got)
		}
	}
}

func TestDeltaSmallerThanRawOnDenseRuns(t *testing.T) {
	// Dense sorted runs (small gaps) should compress well under Delta.
	elems := make([]uint32, 1000)
	for i := range elems {
		elems[i] = uint32(3 * i)
	}
	d := Encode(Delta, elems)
	r := Encode(Raw, elems)
	if d.Bytes() >= r.Bytes() {
		t.Fatalf("delta %d bytes >= raw %d bytes", d.Bytes(), r.Bytes())
	}
	// Gaps of 3 fit in one byte each: payload ~= n-1 bytes.
	if d.Bytes() > 12+len(elems) {
		t.Fatalf("delta encoding too large: %d bytes", d.Bytes())
	}
}

func TestLargeValuesRoundTrip(t *testing.T) {
	elems := []uint32{0, 1, 1 << 20, 1 << 28, 1<<32 - 2, 1<<32 - 1}
	for _, codec := range codecs {
		c := Encode(codec, elems)
		if got := c.Decode(codec, nil); !equal(got, elems) {
			t.Fatalf("codec %v: %v", codec, got)
		}
	}
}

func TestCodecString(t *testing.T) {
	if Delta.String() != "delta" || Raw.String() != "raw" || Codec(9).String() != "unknown" {
		t.Fatal("codec names wrong")
	}
}
