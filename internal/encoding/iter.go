package encoding

import (
	"encoding/binary"
	"sync"
)

// This file implements the zero-allocation streaming layer of the chunk
// format: IterKV (an allocation-free cursor over an encoded chunk yielding
// (id, value) pairs), BuilderKV (an incremental encoder that assembles a
// chunk from a strictly-increasing element stream without materializing
// decoded slices), and the sync.Pool-backed scratch buffers shared by the
// set operations and the C-tree batch algorithms. Together they let
// Union/Difference/Intersect/Split run as streaming two-pointer merges:
// decode one element at a time from each input and append it straight into
// the output encoding, touching O(1) extra memory beyond the result chunk.
//
// Iter and Builder are the id-only (V = struct{}) instantiations kept for
// the unweighted API.

// IterKV is a streaming cursor over the (id, value) pairs of a chunk. It
// decodes one element at a time and performs no allocation; IterKV values
// are meant to live on the stack. The zero IterKV is exhausted.
type IterKV[V Value] struct {
	c   Chunk
	val V      // current element's payload, valid while rem > 0
	cur uint32 // current element's id, valid while rem > 0
	off int    // byte offset of the next element's encoding
	rem int    // elements not yet consumed, including cur
	raw bool   // codec == Raw
	w   uint8  // payload width in bytes (cached so Next stays inlinable)
}

// Iter is the id-only iterator of the unweighted API.
type Iter = IterKV[struct{}]

// NewIterKV returns an iterator positioned on the first element of c.
func NewIterKV[V Value](codec Codec, c Chunk) IterKV[V] {
	n := c.Count()
	if n == 0 {
		return IterKV[V]{}
	}
	w := valueWidth[V]()
	it := IterKV[V]{c: c, rem: n, raw: codec == Raw, w: uint8(w)}
	switch codec {
	case Raw:
		it.cur = binary.LittleEndian.Uint32(c[headerSize:])
		it.val = readValueAt[V](c, headerSize+4, w)
		it.off = headerSize + 4 + w
	case Delta:
		it.cur = c.First()
		it.val = readValueAt[V](c, headerSize, w)
		it.off = headerSize + w
	default:
		panic("encoding: unknown codec")
	}
	return it
}

// NewIter returns an id-only iterator positioned on the first element of c.
func NewIter(codec Codec, c Chunk) Iter { return NewIterKV[struct{}](codec, c) }

// Valid reports whether the iterator is positioned on an element.
func (it *IterKV[V]) Valid() bool { return it.rem > 0 }

// Value returns the current element's id. Only valid while Valid() is true.
func (it *IterKV[V]) Value() uint32 { return it.cur }

// Payload returns the current element's value. Only valid while Valid() is
// true.
func (it *IterKV[V]) Payload() V { return it.val }

// Next advances to the next element. Calling Next on the last element
// exhausts the iterator. The zero-width body is kept small enough to
// inline; payload-carrying instantiations and the multi-byte varint case
// (rare for dense neighbor ids) take the out-of-line slow paths.
func (it *IterKV[V]) Next() {
	it.rem--
	if it.rem <= 0 {
		return
	}
	if it.w == 0 && !it.raw {
		if d := it.c[it.off]; d < 0x80 {
			it.cur += uint32(d)
			it.off++
			return
		}
	}
	it.nextKV()
}

// nextKV is the out-of-line advance: Raw stride, payload bytes, and the
// multi-byte varint gap all land here.
func (it *IterKV[V]) nextKV() {
	w := int(it.w)
	if it.raw {
		it.cur = binary.LittleEndian.Uint32(it.c[it.off:])
		if w != 0 {
			it.val = readValue[V](it.c[it.off+4:])
		}
		it.off += 4 + w
		return
	}
	d, off := uvarint(it.c, it.off)
	it.cur += d
	if w != 0 {
		it.val = readValue[V](it.c[off:])
	}
	it.off = off + w
}

// Remaining returns the number of elements left, including the current one.
func (it *IterKV[V]) Remaining() int { return it.rem }

// AppendRemaining appends every not-yet-consumed element (including the
// current one, with its value) to b in bulk and exhausts the iterator.
// Because a chunk suffix starting at an element boundary is byte-copyable
// under both codecs (raw strides; delta gaps are position-independent and
// value bytes fixed-width), this is a memcpy rather than an element loop —
// the drain step of the streaming merges.
func (it *IterKV[V]) AppendRemaining(b *BuilderKV[V]) {
	if it.rem <= 0 {
		return
	}
	v := it.cur
	if b.n == 0 {
		b.first = v
	}
	if b.raw {
		*b.buf = binary.LittleEndian.AppendUint32(*b.buf, v)
	} else if b.n > 0 {
		*b.buf = putUvarint(*b.buf, v-b.last)
	}
	*b.buf = appendValue(*b.buf, it.val)
	*b.buf = append(*b.buf, it.c[it.off:]...)
	b.n += it.rem
	b.last = it.c.Last()
	it.rem = 0
}

// bytePool recycles payload scratch for Builder. Pointers are pooled (not
// slice headers) so Put does not allocate.
var bytePool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// BuilderKV incrementally encodes a strictly-increasing (id, value) stream
// into a chunk. Elements are appended directly in encoded form — no
// intermediate decoded slices — into a pooled scratch buffer; Chunk()
// copies the finished encoding into an exact-size immutable Chunk (the only
// allocation the caller pays). Release must be called once the builder is
// done.
type BuilderKV[V Value] struct {
	buf   *[]byte
	n     int
	first uint32
	last  uint32
	raw   bool
}

// Builder is the id-only builder of the unweighted API.
type Builder = BuilderKV[struct{}]

// NewBuilderKV returns a builder for the given codec backed by pooled
// scratch.
func NewBuilderKV[V Value](codec Codec) BuilderKV[V] {
	b := bytePool.Get().(*[]byte)
	var hdr [headerSize]byte
	*b = append((*b)[:0], hdr[:]...)
	return BuilderKV[V]{buf: b, raw: codec == Raw}
}

// NewBuilder returns an id-only builder for the given codec.
func NewBuilder(codec Codec) Builder { return NewBuilderKV[struct{}](codec) }

// AppendKV adds (x, v); x must exceed every id appended so far.
func (b *BuilderKV[V]) AppendKV(x uint32, v V) {
	if b.n == 0 {
		b.first = x
	}
	if b.raw {
		*b.buf = binary.LittleEndian.AppendUint32(*b.buf, x)
	} else if b.n > 0 {
		// Delta keeps the first element in the header only; the payload is
		// the gap stream.
		*b.buf = putUvarint(*b.buf, x-b.last)
	}
	*b.buf = appendValue(*b.buf, v)
	b.last = x
	b.n++
}

// Append adds x with the zero value of V; x must exceed every id appended
// so far.
func (b *BuilderKV[V]) Append(x uint32) {
	var z V
	b.AppendKV(x, z)
}

// Count returns the number of elements appended so far.
func (b *BuilderKV[V]) Count() int { return b.n }

// Chunk finalizes the encoding and returns it as an immutable Chunk. The
// builder may continue to be appended to afterwards (the returned chunk is
// a copy). An empty builder yields the nil chunk.
func (b *BuilderKV[V]) Chunk() Chunk {
	if b.n == 0 {
		return nil
	}
	s := *b.buf
	binary.LittleEndian.PutUint32(s[0:4], uint32(b.n))
	binary.LittleEndian.PutUint32(s[4:8], b.first)
	binary.LittleEndian.PutUint32(s[8:12], b.last)
	out := make(Chunk, len(s))
	copy(out, s)
	return out
}

// Release returns the builder's scratch to the pool. The builder must not
// be used afterwards.
func (b *BuilderKV[V]) Release() {
	if b.buf != nil {
		bytePool.Put(b.buf)
		b.buf = nil
	}
}

// concatDisjoint concatenates lo and hi, which must both be non-empty with
// lo.Last() < hi.First(), in O(bytes) with a single allocation and no
// decoding: the payloads are spliced byte-for-byte (for Delta, one varint
// bridges the gap between lo's last and hi's first element; hi's payload
// already begins with hi.First()'s value bytes, so values of any width ride
// along untouched).
func concatDisjoint(codec Codec, lo, hi Chunk) Chunk {
	n := lo.Count() + hi.Count()
	out := make(Chunk, 0, len(lo)+len(hi)+5)
	out = append(out, lo...)
	if codec == Delta {
		out = putUvarint(out, hi.First()-lo.Last())
	}
	out = append(out, hi[headerSize:]...)
	binary.LittleEndian.PutUint32(out[0:4], uint32(n))
	binary.LittleEndian.PutUint32(out[8:12], hi.Last())
	return out
}
