package encoding

import (
	"encoding/binary"
	"sync"
)

// This file implements the zero-allocation streaming layer of the chunk
// format: Iter (an allocation-free cursor over an encoded chunk), Builder
// (an incremental encoder that assembles a chunk from a strictly-increasing
// element stream without materializing a []uint32), and the sync.Pool-backed
// scratch buffers shared by the set operations and by the C-tree batch
// algorithms. Together they let Union/Difference/Intersect/Split run as
// streaming two-pointer merges: decode one element at a time from each input
// and append it straight into the output encoding, touching O(1) extra
// memory beyond the result chunk itself.

// Iter is a streaming cursor over the elements of a chunk. It decodes one
// element at a time and performs no allocation; Iter values are meant to
// live on the stack. The zero Iter is exhausted.
type Iter struct {
	c   Chunk
	cur uint32 // current element, valid while rem > 0
	off int    // byte offset of the next payload item
	rem int    // elements not yet consumed, including cur
	raw bool   // codec == Raw
}

// NewIter returns an iterator positioned on the first element of c.
func NewIter(codec Codec, c Chunk) Iter {
	n := c.Count()
	if n == 0 {
		return Iter{}
	}
	it := Iter{c: c, rem: n, raw: codec == Raw, off: headerSize}
	switch codec {
	case Raw:
		it.cur = binary.LittleEndian.Uint32(c[headerSize:])
		it.off = headerSize + 4
	case Delta:
		it.cur = c.First()
	default:
		panic("encoding: unknown codec")
	}
	return it
}

// Valid reports whether the iterator is positioned on an element.
func (it *Iter) Valid() bool { return it.rem > 0 }

// Value returns the current element. Only valid while Valid() is true.
func (it *Iter) Value() uint32 { return it.cur }

// Next advances to the next element. Calling Next on the last element
// exhausts the iterator. The body is kept small enough to inline; the
// multi-byte varint case (rare for dense neighbor ids) takes the out-of-line
// slow path.
func (it *Iter) Next() {
	it.rem--
	if it.rem <= 0 {
		return
	}
	if it.raw {
		it.cur = binary.LittleEndian.Uint32(it.c[it.off:])
		it.off += 4
		return
	}
	if d := it.c[it.off]; d < 0x80 {
		it.cur += uint32(d)
		it.off++
		return
	}
	it.nextSlow()
}

// nextSlow decodes a multi-byte varint gap.
func (it *Iter) nextSlow() {
	d, off := uvarint(it.c, it.off)
	it.cur += d
	it.off = off
}

// Remaining returns the number of elements left, including the current one.
func (it *Iter) Remaining() int { return it.rem }

// AppendRemaining appends every not-yet-consumed element (including the
// current one) to b in bulk and exhausts the iterator. Because a chunk
// suffix is byte-copyable under both codecs (raw words; delta gaps are
// position-independent), this is a memcpy rather than an element loop — the
// drain step of the streaming merges.
func (it *Iter) AppendRemaining(b *Builder) {
	if it.rem <= 0 {
		return
	}
	v := it.cur
	if b.n == 0 {
		b.first = v
	}
	if b.raw {
		*b.buf = binary.LittleEndian.AppendUint32(*b.buf, v)
	} else if b.n > 0 {
		*b.buf = putUvarint(*b.buf, v-b.last)
	}
	*b.buf = append(*b.buf, it.c[it.off:]...)
	b.n += it.rem
	b.last = it.c.Last()
	it.rem = 0
}

// bytePool recycles payload scratch for Builder. Pointers are pooled (not
// slice headers) so Put does not allocate.
var bytePool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// u32Pool recycles element scratch for the operations that still decode
// (Insert, Remove, and the C-tree grouping paths).
var u32Pool = sync.Pool{New: func() any { s := make([]uint32, 0, 1024); return &s }}

// GetScratch returns a pooled, zero-length []uint32 for transient decoding.
// Release it with PutScratch when done; the contents must not be retained.
func GetScratch() *[]uint32 {
	s := u32Pool.Get().(*[]uint32)
	*s = (*s)[:0]
	return s
}

// PutScratch returns a scratch slice obtained from GetScratch to the pool.
func PutScratch(s *[]uint32) { u32Pool.Put(s) }

// Builder incrementally encodes a strictly-increasing element stream into a
// chunk. Elements are appended directly in encoded form — no intermediate
// []uint32 — into a pooled scratch buffer; Chunk() copies the finished
// encoding into an exact-size immutable Chunk (the only allocation the
// caller pays). Release must be called once the builder is done.
type Builder struct {
	buf   *[]byte
	n     int
	first uint32
	last  uint32
	raw   bool
}

// NewBuilder returns a builder for the given codec backed by pooled scratch.
func NewBuilder(codec Codec) Builder {
	b := bytePool.Get().(*[]byte)
	var hdr [headerSize]byte
	*b = append((*b)[:0], hdr[:]...)
	return Builder{buf: b, raw: codec == Raw}
}

// Append adds x, which must exceed every element appended so far.
func (b *Builder) Append(x uint32) {
	if b.n == 0 {
		b.first = x
	}
	if b.raw {
		*b.buf = binary.LittleEndian.AppendUint32(*b.buf, x)
	} else if b.n > 0 {
		// Delta keeps the first element in the header only; the payload is
		// the gap stream.
		*b.buf = putUvarint(*b.buf, x-b.last)
	}
	b.last = x
	b.n++
}

// Count returns the number of elements appended so far.
func (b *Builder) Count() int { return b.n }

// Chunk finalizes the encoding and returns it as an immutable Chunk. The
// builder may continue to be appended to afterwards (the returned chunk is a
// copy). An empty builder yields the nil chunk.
func (b *Builder) Chunk() Chunk {
	if b.n == 0 {
		return nil
	}
	s := *b.buf
	binary.LittleEndian.PutUint32(s[0:4], uint32(b.n))
	binary.LittleEndian.PutUint32(s[4:8], b.first)
	binary.LittleEndian.PutUint32(s[8:12], b.last)
	out := make(Chunk, len(s))
	copy(out, s)
	return out
}

// Release returns the builder's scratch to the pool. The builder must not be
// used afterwards.
func (b *Builder) Release() {
	if b.buf != nil {
		bytePool.Put(b.buf)
		b.buf = nil
	}
}

// concatDisjoint concatenates lo and hi, which must both be non-empty with
// lo.Last() < hi.First(), in O(bytes) with a single allocation and no
// decoding: the payloads are spliced byte-for-byte (for Delta, one varint
// bridges the gap between lo's last and hi's first element).
func concatDisjoint(codec Codec, lo, hi Chunk) Chunk {
	n := lo.Count() + hi.Count()
	out := make(Chunk, 0, len(lo)+len(hi))
	out = append(out, lo...)
	if codec == Delta {
		out = putUvarint(out, hi.First()-lo.Last())
	}
	out = append(out, hi[headerSize:]...)
	binary.LittleEndian.PutUint32(out[0:4], uint32(n))
	binary.LittleEndian.PutUint32(out[8:12], hi.Last())
	return out
}
