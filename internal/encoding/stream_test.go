package encoding

import (
	"testing"
	"testing/quick"
)

// This file validates the streaming set-op layer (iter.go and the
// two-pointer merges in chunk.go) against straightforward decode-and-merge
// reference implementations, over both random and adversarial inputs.

// refUnion is the decode-and-merge reference for Union.
func refUnion(codec Codec, a, b Chunk) []uint32 {
	ae := a.Decode(codec, nil)
	be := b.Decode(codec, nil)
	out := make([]uint32, 0, len(ae)+len(be))
	i, j := 0, 0
	for i < len(ae) && j < len(be) {
		switch {
		case ae[i] < be[j]:
			out = append(out, ae[i])
			i++
		case ae[i] > be[j]:
			out = append(out, be[j])
			j++
		default:
			out = append(out, ae[i])
			i++
			j++
		}
	}
	out = append(out, ae[i:]...)
	out = append(out, be[j:]...)
	return out
}

// refDifference is the decode-and-merge reference for Difference.
func refDifference(codec Codec, a, b Chunk) []uint32 {
	ae := a.Decode(codec, nil)
	be := b.Decode(codec, nil)
	out := make([]uint32, 0, len(ae))
	j := 0
	for _, x := range ae {
		for j < len(be) && be[j] < x {
			j++
		}
		if j < len(be) && be[j] == x {
			continue
		}
		out = append(out, x)
	}
	return out
}

// refIntersect is the decode-and-merge reference for Intersect.
func refIntersect(codec Codec, a, b Chunk) []uint32 {
	ae := a.Decode(codec, nil)
	be := b.Decode(codec, nil)
	var out []uint32
	i, j := 0, 0
	for i < len(ae) && j < len(be) {
		switch {
		case ae[i] < be[j]:
			i++
		case ae[i] > be[j]:
			j++
		default:
			out = append(out, ae[i])
			i++
			j++
		}
	}
	return out
}

// adversarialPairs enumerates the structured inputs the streaming merges
// must handle: empty sides, disjoint ranges in both orders (the concat fast
// path), adjacent ranges, fully interleaved runs, identical sets, subsets,
// singletons on boundaries, and dense consecutive runs.
func adversarialPairs() [][2][]uint32 {
	seq := func(lo, n, step uint32) []uint32 {
		out := make([]uint32, n)
		for i := range out {
			out[i] = lo + uint32(i)*step
		}
		return out
	}
	return [][2][]uint32{
		{nil, nil},
		{seq(0, 50, 1), nil},
		{nil, seq(0, 50, 1)},
		{seq(0, 100, 1), seq(1000, 100, 1)},  // disjoint, a before b
		{seq(1000, 100, 1), seq(0, 100, 1)},  // disjoint, b before a
		{seq(0, 100, 1), seq(100, 100, 1)},   // adjacent ranges
		{seq(0, 100, 2), seq(1, 100, 2)},     // perfectly interleaved
		{seq(0, 100, 1), seq(0, 100, 1)},     // identical
		{seq(0, 100, 1), seq(20, 30, 1)},     // b inside a
		{seq(20, 30, 1), seq(0, 100, 1)},     // a inside b
		{{5}, seq(0, 10, 1)},                 // singleton inside
		{{42}, {42}},                         // equal singletons
		{{0}, {^uint32(0)}},                  // extreme bounds
		{seq(0, 300, 3), seq(0, 300, 7)},     // periodic overlap
		{seq(0, 1000, 1), seq(999, 1000, 1)}, // one-element overlap
	}
}

func chunkPairs(t *testing.T, f func(codec Codec, a, b Chunk)) {
	t.Helper()
	for _, codec := range codecs {
		for _, p := range adversarialPairs() {
			f(codec, Encode(codec, p[0]), Encode(codec, p[1]))
		}
		for seed := uint64(0); seed < 200; seed++ {
			a := Encode(codec, randomSorted(seed, 300))
			b := Encode(codec, randomSorted(seed+10_000, 300))
			f(codec, a, b)
		}
	}
}

func TestStreamingUnionMatchesReference(t *testing.T) {
	chunkPairs(t, func(codec Codec, a, b Chunk) {
		got := Union(codec, a, b).Decode(codec, nil)
		want := refUnion(codec, a, b)
		if !equal(got, want) {
			t.Fatalf("codec %v: Union mismatch: got %v want %v", codec, got, want)
		}
	})
}

func TestStreamingDifferenceMatchesReference(t *testing.T) {
	chunkPairs(t, func(codec Codec, a, b Chunk) {
		got := Difference(codec, a, b).Decode(codec, nil)
		want := refDifference(codec, a, b)
		if !equal(got, want) {
			t.Fatalf("codec %v: Difference mismatch: got %v want %v", codec, got, want)
		}
	})
}

func TestStreamingIntersectMatchesReference(t *testing.T) {
	chunkPairs(t, func(codec Codec, a, b Chunk) {
		got := Intersect(codec, a, b).Decode(codec, nil)
		want := refIntersect(codec, a, b)
		if !equal(got, want) {
			t.Fatalf("codec %v: Intersect mismatch: got %v want %v", codec, got, want)
		}
	})
}

// TestStreamingSplitMatchesReference checks Split (both the Raw byte-splice
// path and the Delta streaming path) against decode + partition, probing
// every element plus both out-of-range sides.
func TestStreamingSplitMatchesReference(t *testing.T) {
	for _, codec := range codecs {
		for seed := uint64(0); seed < 100; seed++ {
			elems := randomSorted(seed, 200)
			c := Encode(codec, elems)
			probes := append([]uint32{0, ^uint32(0)}, elems...)
			for _, e := range elems {
				probes = append(probes, e+1)
			}
			for _, k := range probes {
				l, found, r := c.Split(codec, k)
				var wl, wr []uint32
				wf := false
				for _, e := range elems {
					switch {
					case e < k:
						wl = append(wl, e)
					case e == k:
						wf = true
					default:
						wr = append(wr, e)
					}
				}
				if found != wf ||
					!equal(l.Decode(codec, nil), wl) ||
					!equal(r.Decode(codec, nil), wr) {
					t.Fatalf("codec %v: Split(%d) mismatch on %v", codec, k, elems)
				}
			}
		}
	}
}

// TestUnionDisjointFastPath pins down the header-bounds concatenation path:
// disjoint inputs must produce byte-identical output to a full re-encode.
func TestUnionDisjointFastPath(t *testing.T) {
	for _, codec := range codecs {
		for seed := uint64(0); seed < 100; seed++ {
			a := randomSorted(seed, 200)
			b := randomSorted(seed+500, 200)
			if len(a) == 0 || len(b) == 0 {
				continue
			}
			// Shift b strictly past a to force disjointness.
			shift := a[len(a)-1] + 1 + b[0]
			bs := make([]uint32, len(b))
			for i := range b {
				bs[i] = b[i] - b[0] + shift
			}
			ca, cb := Encode(codec, a), Encode(codec, bs)
			got := Union(codec, ca, cb)
			want := Encode(codec, append(append([]uint32{}, a...), bs...))
			if len(got) != len(want) {
				t.Fatalf("codec %v: concat size %d != re-encode size %d", codec, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("codec %v: concat bytes differ at %d", codec, i)
				}
			}
		}
	}
}

func TestIterMatchesDecode(t *testing.T) {
	for _, codec := range codecs {
		if err := quick.Check(func(seed uint64) bool {
			elems := randomSorted(seed, 300)
			c := Encode(codec, elems)
			var got []uint32
			for it := NewIter(codec, c); it.Valid(); it.Next() {
				got = append(got, it.Value())
			}
			return equal(got, elems)
		}, nil); err != nil {
			t.Fatalf("codec %v: %v", codec, err)
		}
	}
}

func TestBuilderMatchesEncode(t *testing.T) {
	for _, codec := range codecs {
		if err := quick.Check(func(seed uint64) bool {
			elems := randomSorted(seed, 300)
			b := NewBuilder(codec)
			defer b.Release()
			for _, e := range elems {
				b.Append(e)
			}
			got, want := b.Chunk(), Encode(codec, elems)
			if len(got) != len(want) {
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					return false
				}
			}
			return true
		}, nil); err != nil {
			t.Fatalf("codec %v: %v", codec, err)
		}
	}
}

// FuzzStreamingSetOps cross-checks all three streaming set operations
// against the references on fuzz-generated element sets.
func FuzzStreamingSetOps(f *testing.F) {
	f.Add(uint64(1), uint64(2))
	f.Add(uint64(0), uint64(0))
	f.Add(uint64(123), uint64(456))
	f.Fuzz(func(t *testing.T, s1, s2 uint64) {
		for _, codec := range codecs {
			a := Encode(codec, randomSorted(s1, 400))
			b := Encode(codec, randomSorted(s2, 400))
			if got, want := Union(codec, a, b).Decode(codec, nil), refUnion(codec, a, b); !equal(got, want) {
				t.Fatalf("Union mismatch")
			}
			if got, want := Difference(codec, a, b).Decode(codec, nil), refDifference(codec, a, b); !equal(got, want) {
				t.Fatalf("Difference mismatch")
			}
			if got, want := Intersect(codec, a, b).Decode(codec, nil), refIntersect(codec, a, b); !equal(got, want) {
				t.Fatalf("Intersect mismatch")
			}
		}
	})
}
