package wal

import "repro/internal/obs"

// RegisterMetrics exposes the log's counters through an obs.Registry as
// read-through views — the atomics in Log stay the single source of
// truth (Stats() keeps serving them), the registry only reads them at
// scrape time. Appends, syncs, and bytes are one atomic load each;
// segments takes the log mutex, which a scrape may contend with the
// writer for (scrape-rate, not commit-rate, cost).
func (l *Log) RegisterMetrics(reg *obs.Registry, labels ...obs.Label) {
	reg.CounterFunc("aspen_wal_appends_total",
		"WAL records appended.", l.appends.Load, labels...)
	reg.CounterFunc("aspen_wal_syncs_total",
		"WAL fsyncs issued (policy, barrier, rotation).", l.syncs.Load, labels...)
	reg.CounterFunc("aspen_wal_bytes_total",
		"WAL frame bytes appended, headers included.", l.bytes.Load, labels...)
	reg.GaugeFunc("aspen_wal_segments",
		"Live WAL segment files.", func() float64 {
			l.mu.Lock()
			defer l.mu.Unlock()
			return float64(l.segments)
		}, labels...)
}
