package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Replay scans the log in sequence order, invoking fn for every valid
// record with Seq > after (records at or below `after` are covered by the
// checkpoint being recovered from; they are still checksum-verified while
// scanning past). It returns the last valid sequence number seen anywhere
// in the log — `after` when nothing newer survives.
//
// A torn or checksum-failed record in the FINAL segment is the write that
// was in flight when the process died: replay stops cleanly there. The
// same damage in an earlier segment cannot be explained by a crash (later
// segments only exist because appending continued) and returns ErrCorrupt.
// fn's Record.Data aliases an internal buffer valid only during the call.
func Replay(dir string, after uint64, fn func(Record) error) (uint64, error) {
	segs, err := listSegments(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return after, nil
		}
		return after, err
	}
	last := after
	for i, seg := range segs {
		final := i == len(segs)-1
		stop, segLast, err := replaySegment(seg, after, final, fn)
		if err != nil {
			return last, err
		}
		if segLast > last {
			last = segLast
		}
		if stop {
			break
		}
	}
	return last, nil
}

// replaySegment scans one segment. It returns stop=true when the segment
// ended at a torn tail (only legal in the final segment; callers stop
// replay there).
func replaySegment(seg segment, after uint64, final bool, fn func(Record) error) (stop bool, last uint64, err error) {
	f, err := os.Open(seg.path)
	if err != nil {
		return false, 0, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)

	var hdr [headerSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if final {
			// A header that never finished landing: the process died
			// creating this segment, which therefore holds no records.
			return true, 0, nil
		}
		return false, 0, fmt.Errorf("%w: short segment header in %s", ErrCorrupt, seg.path)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != segMagic ||
		binary.LittleEndian.Uint32(hdr[4:]) != segVersion ||
		binary.LittleEndian.Uint32(hdr[16:]) != crc32.Checksum(hdr[:16], castagnoli) ||
		binary.LittleEndian.Uint64(hdr[8:]) != seg.first {
		if final {
			return true, 0, nil
		}
		return false, 0, fmt.Errorf("%w: bad segment header in %s", ErrCorrupt, seg.path)
	}

	expect := seg.first
	var buf []byte
	for {
		var fh [frameHead]byte
		if _, err := io.ReadFull(br, fh[:]); err != nil {
			if err == io.EOF {
				return false, last, nil // clean segment end
			}
			// Torn frame header.
			return tornOr(final, last, seg)
		}
		payload := binary.LittleEndian.Uint32(fh[0:])
		if payload < recHead || payload > maxPayload {
			return tornOr(final, last, seg)
		}
		if cap(buf) < int(payload) {
			buf = make([]byte, payload)
		}
		buf = buf[:payload]
		if _, err := io.ReadFull(br, buf); err != nil {
			return tornOr(final, last, seg)
		}
		if crc32.Checksum(buf, castagnoli) != binary.LittleEndian.Uint32(fh[4:]) {
			return tornOr(final, last, seg)
		}
		seq := binary.LittleEndian.Uint64(buf[0:])
		kind := Kind(buf[8])
		width := buf[9]
		count := binary.LittleEndian.Uint32(buf[12:])
		want := uint64(count) * uint64(width)
		if kind.HasNote() {
			want += NoteLen
		}
		if seq != expect || want != uint64(payload-recHead) {
			// A checksum-valid record with the wrong sequence number or an
			// inconsistent count is not a torn write — it is corruption.
			return false, last, fmt.Errorf("%w: record seq %d (want %d) in %s", ErrCorrupt, seq, expect, seg.path)
		}
		expect++
		last = seq
		if seq > after && fn != nil {
			if err := fn(Record{Seq: seq, Kind: kind, Width: width, Count: count, Data: buf[recHead:]}); err != nil {
				return false, last, err
			}
		}
	}
}

func tornOr(final bool, last uint64, seg segment) (bool, uint64, error) {
	if final {
		return true, last, nil
	}
	return false, last, fmt.Errorf("%w: torn record before final segment in %s", ErrCorrupt, seg.path)
}

// repairTail truncates the last segment back to its last valid frame
// boundary, removing the torn record a crash may have left, so appending
// can resume into a directory whose every surviving byte is valid. A last
// segment whose header never fully landed is deleted outright.
func repairTail(dir string) error {
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		return err
	}
	seg := segs[len(segs)-1]
	validEnd, headerOK, err := validPrefix(seg)
	if err != nil {
		return err
	}
	if !headerOK {
		if err := os.Remove(seg.path); err != nil {
			return err
		}
		return syncDir(dir)
	}
	fi, err := os.Stat(seg.path)
	if err != nil {
		return err
	}
	if validEnd < fi.Size() {
		if err := os.Truncate(seg.path, validEnd); err != nil {
			return err
		}
		return syncDir(dir)
	}
	return nil
}

// validPrefix returns the byte offset of the end of the segment's last
// valid frame (headerOK=false when even the header is damaged).
func validPrefix(seg segment) (end int64, headerOK bool, err error) {
	f, err := os.Open(seg.path)
	if err != nil {
		return 0, false, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)

	var hdr [headerSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, false, nil
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != segMagic ||
		binary.LittleEndian.Uint32(hdr[4:]) != segVersion ||
		binary.LittleEndian.Uint32(hdr[16:]) != crc32.Checksum(hdr[:16], castagnoli) ||
		binary.LittleEndian.Uint64(hdr[8:]) != seg.first {
		return 0, false, nil
	}
	end = headerSize
	expect := seg.first
	var buf []byte
	for {
		var fh [frameHead]byte
		if _, err := io.ReadFull(br, fh[:]); err != nil {
			return end, true, nil
		}
		payload := binary.LittleEndian.Uint32(fh[0:])
		if payload < recHead || payload > maxPayload {
			return end, true, nil
		}
		if cap(buf) < int(payload) {
			buf = make([]byte, payload)
		}
		buf = buf[:payload]
		if _, err := io.ReadFull(br, buf); err != nil {
			return end, true, nil
		}
		if crc32.Checksum(buf, castagnoli) != binary.LittleEndian.Uint32(fh[4:]) {
			return end, true, nil
		}
		if binary.LittleEndian.Uint64(buf[0:]) != expect {
			return end, true, nil
		}
		expect++
		end += int64(frameHead) + int64(payload)
	}
}
