// Package wal is the segmented write-ahead log behind the stream engine's
// durable commit path. Each record is a checksummed, length-prefixed batch
// of edge updates (insert/delete kind, fixed payload width, CRC32C); the
// log is a directory of segment files named by the first sequence number
// they contain, so truncating history after a checkpoint is deleting whole
// files. Purely-functional snapshots make the recovery contract simple:
// replaying the log's surviving prefix over the last checkpoint always
// reproduces some committed version exactly (batch application is a
// deterministic function of the record stream).
//
// Crash tolerance is tested, not assumed: every state-changing operation
// passes through an optional failpoint hook that can simulate the process
// dying at that instant (including mid-record, leaving a torn frame on
// disk). Replay stops cleanly at a torn or checksum-failed record in the
// final segment — the write that was in flight when the process died — and
// Open repairs the tail by truncating it back to the last valid frame
// boundary before appending resumes.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind labels a record's batch operation.
type Kind uint8

const (
	// Insert is a batch of edge insertions.
	Insert Kind = iota
	// Delete is a batch of edge deletions.
	Delete
	// NotedInsert / NotedDelete are Insert / Delete whose payload leads
	// with a NoteLen-byte idempotency note — client id u64, client seq
	// u64, little-endian — ahead of the Count*Width edge bytes. The note
	// rides inside the same checksummed record as the batch it tags, so
	// the distributed layer's per-client dedup window is recovered
	// atomically with the data on replay and ships to replicas through
	// the ordinary tail stream.
	NotedInsert
	NotedDelete
)

// NoteLen is the idempotency-note prefix length of Noted* payloads.
const NoteLen = 16

// IsDelete reports whether the record applies deletions.
func (k Kind) IsDelete() bool { return k == Delete || k == NotedDelete }

// HasNote reports whether the payload leads with a NoteLen-byte note.
func (k Kind) HasNote() bool { return k == NotedInsert || k == NotedDelete }

// Record is one appended batch.
type Record struct {
	// Seq is the record's sequence number; consecutive records have
	// consecutive numbers, starting at 1.
	Seq uint64
	// Kind is the batch operation.
	Kind Kind
	// Width is the fixed encoded size of one edge update in Data (8 for
	// unweighted src+dst, 12 with a float32 weight).
	Width uint8
	// Count is the number of edge updates in Data.
	Count uint32
	// Data is the batch payload: Count*Width bytes, preceded by a
	// NoteLen-byte note for the Noted* kinds. During Replay it aliases
	// an internal buffer and is only valid inside the callback.
	Data []byte
}

// ErrCrash is returned by a failpoint hook to simulate the process dying
// at that point: the in-flight operation is abandoned exactly as a kill -9
// would leave it (written bytes survive, buffered bytes are lost) and the
// log must not be used further except through Abort.
var ErrCrash = errors.New("wal: crash injected")

// ErrCorrupt reports unrecoverable log damage: a checksum or framing
// failure before the final segment's tail, where no in-flight write can
// explain it.
var ErrCorrupt = errors.New("wal: corrupt log")

// Failpoint is the crash-injection hook. It receives the operation about
// to run — "append" (before any byte of the frame), "append.partial"
// (after half the frame reached the file), "append.flush" (frame fully on
// disk, not yet synced), "sync" (before fsync), "truncate" (before each
// old segment is deleted) — and returning ErrCrash abandons it there.
type Failpoint func(op string) error

// Options tunes a Log. The zero value selects defaults.
type Options struct {
	// SegmentBytes rotates to a new segment file once the current one
	// exceeds this size. Default 64 MiB.
	SegmentBytes int64
	// Fail, when set, is consulted at every kill point (crash-injection
	// tests). Nil disables.
	Fail Failpoint
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	return o
}

const (
	segMagic   = 0x4C415741 // "AWAL", little-endian
	segVersion = 1
	headerSize = 20 // magic u32, version u32, firstSeq u64, crc u32
	frameHead  = 8  // payload length u32, payload crc u32
	recHead    = 16 // seq u64, kind u8, width u8, reserved u16, count u32
	segPrefix  = "wal-"
	segSuffix  = ".seg"
	// maxPayload bounds a frame's declared payload length during replay;
	// anything larger is framing damage, not a real record.
	maxPayload = 1 << 30
)

// castagnoli is the CRC32C table (the checksum used throughout).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func segName(firstSeq uint64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, firstSeq, segSuffix)
}

func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
	if len(hex) != 16 {
		return 0, false
	}
	n, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// Stats is a point-in-time view of a Log's counters.
type Stats struct {
	// Appends is the number of records appended.
	Appends uint64 `json:"appends"`
	// Syncs is the number of explicit fsyncs.
	Syncs uint64 `json:"syncs"`
	// Bytes is the total frame bytes appended (headers included).
	Bytes uint64 `json:"bytes"`
	// Segments is the number of live segment files.
	Segments int `json:"segments"`
}

// Log is an append-only segmented WAL opened on a directory. One writer
// appends; Sync may be called concurrently (the interval-fsync policy runs
// it from a ticker goroutine), so all file state is mutex-guarded.
type Log struct {
	dir  string
	opts Options

	mu       sync.Mutex
	f        *os.File
	bw       *bufio.Writer
	segStart uint64 // first seq of the current segment
	written  int64  // bytes written to the current segment
	next     uint64 // next seq to assign
	segments int
	closed   bool
	frame    []byte // grow-only frame scratch

	appends atomic.Uint64
	syncs   atomic.Uint64
	bytes   atomic.Uint64
}

// Open opens dir for appending with nextSeq as the next sequence number
// (1 on an empty log; Replay's last record + 1 after recovery). The torn
// tail left by a crash, if any, is repaired — truncated back to the last
// valid frame boundary — and appending starts in a fresh segment, so a
// segment's name always states exactly where it begins.
func Open(dir string, nextSeq uint64, opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if nextSeq == 0 {
		nextSeq = 1
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if err := repairTail(dir); err != nil {
		return nil, err
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opts: opts, next: nextSeq, segments: len(segs)}
	if err := l.openSegment(); err != nil {
		return nil, err
	}
	return l, nil
}

// openSegment starts a new segment at l.next. Caller holds l.mu (or has
// exclusive access during Open).
func (l *Log) openSegment() error {
	path := filepath.Join(l.dir, segName(l.next))
	// A same-named segment can only exist if a previous process opened at
	// this seq and died before appending anything durable; truncating it
	// loses nothing (any surviving record would have advanced nextSeq).
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], segMagic)
	binary.LittleEndian.PutUint32(hdr[4:], segVersion)
	binary.LittleEndian.PutUint64(hdr[8:], l.next)
	binary.LittleEndian.PutUint32(hdr[16:], crc32.Checksum(hdr[:16], castagnoli))
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	if err := syncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.f = f
	if l.bw == nil {
		l.bw = bufio.NewWriterSize(f, 1<<16)
	} else {
		l.bw.Reset(f)
	}
	l.segStart = l.next
	l.written = headerSize
	l.segments++
	return nil
}

// rotate syncs and closes the current segment, then opens the next one.
func (l *Log) rotate() error {
	if err := l.bw.Flush(); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	return l.openSegment()
}

func (l *Log) fail(op string) error {
	if l.opts.Fail == nil {
		return nil
	}
	return l.opts.Fail(op)
}

// Append writes one record and returns its sequence number. The data
// slice is copied into the log's own framing buffer before any I/O, so
// callers may reuse it. Append alone does not guarantee durability — the
// record is buffered, then file-written; only Sync (or rotation/Close)
// forces it to stable storage.
func (l *Log) Append(kind Kind, width uint8, count uint32, data []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, errors.New("wal: closed")
	}
	if err := l.fail("append"); err != nil {
		return 0, err
	}
	payload := recHead + len(data)
	if need := frameHead + payload; cap(l.frame) < need {
		l.frame = make([]byte, 0, need+need/2)
	}
	fr := l.frame[:frameHead+payload]
	binary.LittleEndian.PutUint32(fr[0:], uint32(payload))
	binary.LittleEndian.PutUint64(fr[8:], l.next)
	fr[16] = byte(kind)
	fr[17] = width
	fr[18], fr[19] = 0, 0
	binary.LittleEndian.PutUint32(fr[20:], count)
	copy(fr[frameHead+recHead:], data)
	binary.LittleEndian.PutUint32(fr[4:], crc32.Checksum(fr[8:], castagnoli))

	if l.written+int64(len(fr)) > l.opts.SegmentBytes && l.written > headerSize {
		if err := l.rotate(); err != nil {
			return 0, err
		}
	}
	if err := l.fail("append.partial"); err != nil {
		// Simulate dying mid-write: half the frame reaches the file (a
		// torn record for recovery to tolerate), the rest never existed.
		n := len(fr) / 2
		if _, werr := l.bw.Write(fr[:n]); werr == nil {
			l.bw.Flush()
		}
		return 0, err
	}
	if _, err := l.bw.Write(fr); err != nil {
		return 0, err
	}
	seq := l.next
	l.next++
	l.written += int64(len(fr))
	l.appends.Add(1)
	l.bytes.Add(uint64(len(fr)))
	if err := l.fail("append.flush"); err != nil {
		// Frame fully written: flush it to the file (surviving a process
		// death) but report the crash before the caller can ack.
		l.bw.Flush()
		return 0, err
	}
	return seq, nil
}

// Sync flushes buffered frames and fsyncs the current segment. A record
// is durable against power loss only after its Append was followed by a
// Sync (the per-commit fsync policy); against process death alone, the
// flush suffices.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: closed")
	}
	if err := l.fail("sync"); err != nil {
		// Crash before fsync: whatever was buffered still reaches the OS
		// (a process death loses user-space buffers only at the instant of
		// the kill; this point models dying inside the sync call).
		l.bw.Flush()
		return err
	}
	if err := l.bw.Flush(); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.syncs.Add(1)
	return nil
}

// NextSeq returns the sequence number the next Append will be assigned.
func (l *Log) NextSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// Close flushes, fsyncs and closes the log (a clean shutdown).
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if err := l.bw.Flush(); err != nil {
		l.f.Close()
		return err
	}
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

// Abort closes the log without flushing or syncing — the teardown path
// after an injected crash, modeling the process dying with its user-space
// buffer: bytes already written to the file survive, buffered bytes are
// lost.
func (l *Log) Abort() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.closed = true
	l.bw.Reset(io.Discard)
	l.f.Close()
}

// TruncateBefore deletes every segment whose records all have seq <= seq —
// those made redundant by a checkpoint at seq. A segment's upper bound is
// the next segment's first seq, so only segments strictly below the
// following one's start are removed and the active segment never is.
func (l *Log) TruncateBefore(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	segs, err := listSegments(l.dir)
	if err != nil {
		return err
	}
	removed := false
	for i := 0; i+1 < len(segs); i++ {
		if segs[i+1].first > seq+1 {
			break
		}
		if segs[i].first == l.segStart {
			break // never the active segment
		}
		if err := l.fail("truncate"); err != nil {
			return err
		}
		if err := os.Remove(segs[i].path); err != nil {
			return err
		}
		l.segments--
		removed = true
	}
	if removed {
		return syncDir(l.dir)
	}
	return nil
}

// Stats returns the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	segments := l.segments
	l.mu.Unlock()
	return Stats{
		Appends:  l.appends.Load(),
		Syncs:    l.syncs.Load(),
		Bytes:    l.bytes.Load(),
		Segments: segments,
	}
}

// OldestSeq returns the first sequence number still covered by dir's
// on-disk segments (the oldest segment's header firstSeq), or 0 when
// the directory holds no segments. Replay(dir, after, ...) can only
// produce a gap-free stream when after+1 >= OldestSeq; callers that
// resume from an older point (a lagging tail subscriber after
// checkpoint truncation) must bootstrap from a snapshot instead.
func OldestSeq(dir string) (uint64, error) {
	segs, err := listSegments(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, nil
		}
		return 0, err
	}
	if len(segs) == 0 {
		return 0, nil
	}
	return segs[0].first, nil
}

type segment struct {
	path  string
	first uint64
}

// listSegments returns the directory's segment files sorted by first seq.
func listSegments(dir string) ([]segment, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segment
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		if first, ok := parseSegName(e.Name()); ok {
			segs = append(segs, segment{path: filepath.Join(dir, e.Name()), first: first})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	return segs, nil
}

// syncDir fsyncs a directory so entry creations/removals are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
