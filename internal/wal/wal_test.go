package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// mkData builds a deterministic payload for record i: count edges of
// width bytes each.
func mkData(i int, count int, width int) []byte {
	data := make([]byte, count*width)
	for j := range data {
		data[j] = byte(i + j*7)
	}
	return data
}

func appendN(t *testing.T, l *Log, start, n int) {
	t.Helper()
	for i := start; i < start+n; i++ {
		kind := Insert
		if i%3 == 2 {
			kind = Delete
		}
		seq, err := l.Append(kind, 8, uint32(4+i%3), mkData(i, 4+i%3, 8))
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if want := uint64(i + 1); seq != want {
			t.Fatalf("append %d: seq %d, want %d", i, seq, want)
		}
	}
}

// verifyReplay replays dir from `after` and checks the records match the
// deterministic stream [after, total).
func verifyReplay(t *testing.T, dir string, after uint64, total int) {
	t.Helper()
	i := int(after)
	last, err := Replay(dir, after, func(r Record) error {
		wantKind := Insert
		if i%3 == 2 {
			wantKind = Delete
		}
		if r.Seq != uint64(i+1) || r.Kind != wantKind || r.Width != 8 || int(r.Count) != 4+i%3 {
			return fmt.Errorf("record %d: got seq=%d kind=%d count=%d", i, r.Seq, r.Kind, r.Count)
		}
		if !bytes.Equal(r.Data, mkData(i, 4+i%3, 8)) {
			return fmt.Errorf("record %d: payload mismatch", i)
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if i != total {
		t.Fatalf("replayed up to %d, want %d", i, total)
	}
	if last != uint64(total) {
		t.Fatalf("last seq %d, want %d", last, total)
	}
}

func TestRoundTripAcrossSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 1, Options{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 100)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	if len(segs) < 3 {
		t.Fatalf("expected rotation: got %d segments", len(segs))
	}
	verifyReplay(t, dir, 0, 100)
	verifyReplay(t, dir, 42, 100) // checkpoint skip path
}

func TestReopenContinuesSequence(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 10)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	last, err := Replay(dir, 0, nil)
	if err != nil || last != 10 {
		t.Fatalf("replay: last=%d err=%v", last, err)
	}
	l2, err := Open(dir, last+1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l2, 10, 10)
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	verifyReplay(t, dir, 0, 20)
}

func TestTornTailTolerated(t *testing.T) {
	for _, cut := range []int64{1, 3, 7, 11} {
		t.Run(fmt.Sprintf("cut%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(dir, 1, Options{})
			if err != nil {
				t.Fatal(err)
			}
			appendN(t, l, 0, 20)
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			segs, _ := listSegments(dir)
			seg := segs[len(segs)-1].path
			fi, _ := os.Stat(seg)
			if err := os.Truncate(seg, fi.Size()-cut); err != nil {
				t.Fatal(err)
			}
			// The final record is torn: replay yields exactly 19 records.
			verifyReplay(t, dir, 0, 19)
			// Open repairs the tail and appending resumes cleanly.
			l2, err := Open(dir, 20, Options{})
			if err != nil {
				t.Fatal(err)
			}
			// Record 19 was lost to the torn write; the stream continues
			// with a fresh record 20 (recovery re-derives what to append).
			appendN(t, l2, 19, 5)
			if err := l2.Close(); err != nil {
				t.Fatal(err)
			}
			verifyReplay(t, dir, 0, 24)
		})
	}
}

func TestMidLogCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 1, Options{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 100)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	if len(segs) < 3 {
		t.Fatalf("need ≥3 segments, got %d", len(segs))
	}
	// Flip a byte in the middle of a non-final segment.
	victim := segs[1].path
	raw, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(victim, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(dir, 0, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("replay on mid-log corruption: err=%v, want ErrCorrupt", err)
	}
}

func TestTruncateBefore(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 1, Options{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 100)
	segs, _ := listSegments(dir)
	if len(segs) < 4 {
		t.Fatalf("need ≥4 segments, got %d", len(segs))
	}
	// Checkpoint at the start of the third segment: the first two hold
	// only records at or below it and must go; everything after stays.
	ckpt := segs[2].first - 1
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.TruncateBefore(ckpt); err != nil {
		t.Fatal(err)
	}
	after, _ := listSegments(dir)
	if len(after) != len(segs)-2 {
		t.Fatalf("got %d segments after truncate, want %d", len(after), len(segs)-2)
	}
	// Replay from the checkpoint still yields the full surviving suffix.
	verifyReplay(t, dir, ckpt, 100)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Truncating at the head of the active segment never deletes it.
	l2, err := Open(dir, 101, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.TruncateBefore(1 << 60); err != nil {
		t.Fatal(err)
	}
	final, _ := listSegments(dir)
	if len(final) != 1 {
		t.Fatalf("got %d segments, want only the active one", len(final))
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCrashPoints drives the log through every kill point and asserts the
// recovery invariant: replay yields exactly the records whose Append
// returned success (plus, at points past the write, possibly the one in
// flight), and never a record that was refused.
func TestCrashPoints(t *testing.T) {
	points := []string{"append", "append.partial", "append.flush", "sync"}
	for _, point := range points {
		for arm := 1; arm <= 3; arm++ {
			t.Run(fmt.Sprintf("%s/%d", point, arm), func(t *testing.T) {
				dir := t.TempDir()
				hits := 0
				fp := func(op string) error {
					if op == point {
						hits++
						if hits == arm {
							return ErrCrash
						}
					}
					return nil
				}
				l, err := Open(dir, 1, Options{SegmentBytes: 4096, Fail: fp})
				if err != nil {
					t.Fatal(err)
				}
				acked := 0
				crashed := false
				for i := 0; i < 50; i++ {
					if _, err := l.Append(Insert, 8, 4, mkData(i, 4, 8)); err != nil {
						if !errors.Is(err, ErrCrash) {
							t.Fatalf("append: %v", err)
						}
						crashed = true
						break
					}
					if err := l.Sync(); err != nil {
						if !errors.Is(err, ErrCrash) {
							t.Fatalf("sync: %v", err)
						}
						crashed = true
						break
					}
					acked++
				}
				if !crashed {
					t.Fatalf("failpoint %s never fired", point)
				}
				l.Abort()

				n := 0
				last, err := Replay(dir, 0, func(r Record) error { n++; return nil })
				if err != nil {
					t.Fatalf("replay after crash: %v", err)
				}
				// Every synced (acked) record must survive; at most the
				// record in flight at the crash may additionally survive.
				if n < acked || n > acked+1 {
					t.Fatalf("point %s: replayed %d records, acked %d", point, n, acked)
				}
				if last != uint64(n) {
					t.Fatalf("last=%d n=%d", last, n)
				}

				// The log must reopen and serve appends after the crash.
				l2, err := Open(dir, last+1, Options{})
				if err != nil {
					t.Fatalf("reopen: %v", err)
				}
				if _, err := l2.Append(Insert, 8, 4, mkData(99, 4, 8)); err != nil {
					t.Fatal(err)
				}
				if err := l2.Close(); err != nil {
					t.Fatal(err)
				}
				m := 0
				if _, err := Replay(dir, 0, func(Record) error { m++; return nil }); err != nil {
					t.Fatal(err)
				}
				if m != n+1 {
					t.Fatalf("after reopen: %d records, want %d", m, n+1)
				}
			})
		}
	}
}

// TestCrashDuringTruncate kills the log between segment deletions and
// checks that replay from the checkpoint seq still works — truncation is
// pure garbage collection, so dying inside it can never lose state.
func TestCrashDuringTruncate(t *testing.T) {
	dir := t.TempDir()
	armed := false
	fp := func(op string) error {
		if armed && op == "truncate" {
			return ErrCrash
		}
		return nil
	}
	l, err := Open(dir, 1, Options{SegmentBytes: 512, Fail: fp})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 100)
	segs, _ := listSegments(dir)
	if len(segs) < 4 {
		t.Fatalf("need ≥4 segments, got %d", len(segs))
	}
	ckpt := segs[2].first - 1
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	armed = true
	if err := l.TruncateBefore(ckpt); !errors.Is(err, ErrCrash) {
		t.Fatalf("truncate: err=%v, want ErrCrash", err)
	}
	l.Abort()
	verifyReplay(t, dir, ckpt, 100)
}

func TestEmptyAndHeaderOnlyLogs(t *testing.T) {
	// Replaying a directory that does not exist is an empty log.
	last, err := Replay(filepath.Join(t.TempDir(), "nope"), 0, nil)
	if err != nil || last != 0 {
		t.Fatalf("missing dir: last=%d err=%v", last, err)
	}
	// A log whose only segment is header-only yields nothing.
	dir := t.TempDir()
	l, err := Open(dir, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	last, err = Replay(dir, 0, func(Record) error { return errors.New("unexpected record") })
	if err != nil || last != 0 {
		t.Fatalf("header-only: last=%d err=%v", last, err)
	}
	// Reopening at the same seq truncates the stale empty segment safely.
	l2, err := Open(dir, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l2, 0, 3)
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	verifyReplay(t, dir, 0, 3)
}

func TestHeaderDamageLastSegmentRepaired(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 5)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate dying while creating a new segment: header half-written.
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], segMagic)
	if err := os.WriteFile(filepath.Join(dir, segName(6)), hdr[:10], 0o644); err != nil {
		t.Fatal(err)
	}
	verifyReplay(t, dir, 0, 5)
	l2, err := Open(dir, 6, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l2, 5, 5)
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	verifyReplay(t, dir, 0, 10)
}

// BenchmarkWALAppend is the allocation gate for the durable commit hot
// path: framing + buffered write of one 5000-edge batch record must not
// allocate (the frame scratch is grow-only and reused).
func BenchmarkWALAppend(b *testing.B) {
	dir := b.TempDir()
	l, err := Open(dir, 1, Options{SegmentBytes: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	data := mkData(0, 5000, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(Insert, 8, 5000, data); err != nil {
			b.Fatal(err)
		}
	}
}
