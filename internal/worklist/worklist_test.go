package worklist

import (
	"sync/atomic"
	"testing"

	"repro/internal/algos"
	"repro/internal/csr"
	"repro/internal/rmat"
)

func TestWorklistProcessesAll(t *testing.T) {
	wl := New()
	items := make([]uint32, 1000)
	for i := range items {
		items[i] = uint32(i)
	}
	wl.Push(items)
	var sum atomic.Int64
	wl.Run(func(item uint32, push func([]uint32)) {
		sum.Add(int64(item))
	})
	if sum.Load() != 1000*999/2 {
		t.Fatalf("sum = %d", sum.Load())
	}
}

func TestWorklistDynamicPush(t *testing.T) {
	wl := New()
	wl.Push([]uint32{10})
	var visits atomic.Int64
	wl.Run(func(item uint32, push func([]uint32)) {
		visits.Add(1)
		if item > 0 {
			push([]uint32{item - 1})
		}
	})
	if visits.Load() != 11 {
		t.Fatalf("visits = %d, want 11", visits.Load())
	}
}

func TestBFSAsyncMatchesSyncBFS(t *testing.T) {
	gen := rmat.NewGenerator(10, 11)
	g := csr.FromAdjacency(gen.Adjacency(6000))
	want := algos.BFS(g, 0, true).Distances()
	got := BFSAsync(g, 0)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dist[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestBFSAsyncOutOfRange(t *testing.T) {
	g := csr.FromAdjacency([][]uint32{{1}, {0}})
	d := BFSAsync(g, 99)
	for _, v := range d {
		if v != -1 {
			t.Fatal("out-of-range source should reach nothing")
		}
	}
}

func TestMISSerialValid(t *testing.T) {
	gen := rmat.NewGenerator(9, 21)
	adj := gen.Adjacency(3000)
	g := csr.FromAdjacency(adj)
	in := MISSerial(g)
	for u := range adj {
		if in[u] {
			for _, v := range adj[u] {
				if in[v] {
					t.Fatalf("adjacent %d,%d in MIS", u, v)
				}
			}
		} else {
			ok := false
			for _, v := range adj[u] {
				if in[v] {
					ok = true
					break
				}
			}
			if !ok && len(adj[u]) > 0 {
				t.Fatalf("vertex %d not maximal", u)
			}
			if len(adj[u]) == 0 && !in[u] {
				t.Fatalf("isolated vertex %d excluded", u)
			}
		}
	}
}
