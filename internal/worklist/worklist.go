// Package worklist provides an asynchronous, worklist-driven execution
// engine in the style of Galois (Nguyen et al., SOSP 2013), the third static
// baseline of §7.7. Work items (vertices) are processed by a pool of workers
// pulling chunks from a shared queue; there is no level synchronization and
// no direction optimization — the properties responsible for Galois's BFS
// behaviour in Table 12.
package worklist

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/ligra"
	"repro/internal/parallel"
)

// chunkSize is the number of vertices a worker claims at once.
const chunkSize = 64

// Worklist is a concurrent multi-producer multi-consumer chunked FIFO.
// FIFO ordering keeps label-correcting algorithms close to level order,
// bounding re-relaxation (Galois's BFS worklists behave similarly).
type Worklist struct {
	mu      sync.Mutex
	chunks  [][]uint32
	head    int
	pending atomic.Int64 // items pushed but not yet fully processed
}

// New returns an empty worklist.
func New() *Worklist { return &Worklist{} }

// Push adds items to the worklist.
func (w *Worklist) Push(items []uint32) {
	if len(items) == 0 {
		return
	}
	w.pending.Add(int64(len(items)))
	w.mu.Lock()
	for len(items) > chunkSize {
		w.chunks = append(w.chunks, items[:chunkSize])
		items = items[chunkSize:]
	}
	w.chunks = append(w.chunks, items)
	w.mu.Unlock()
}

// pop removes the oldest chunk, or returns nil when the queue is momentarily
// empty.
func (w *Worklist) pop() []uint32 {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.head >= len(w.chunks) {
		return nil
	}
	c := w.chunks[w.head]
	w.chunks[w.head] = nil
	w.head++
	if w.head > 1024 && w.head*2 > len(w.chunks) {
		// Compact the drained prefix.
		w.chunks = append([][]uint32(nil), w.chunks[w.head:]...)
		w.head = 0
	}
	return c
}

// Run processes items with fn until the worklist drains. fn may push new
// work. The engine runs parallel.Procs workers.
func (w *Worklist) Run(fn func(item uint32, push func([]uint32))) {
	workers := parallel.Procs
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer wg.Done()
			for {
				c := w.pop()
				if c == nil {
					if w.pending.Load() == 0 {
						return
					}
					// Yield while other workers publish work; raw
					// spinning starves them on small core counts.
					runtime.Gosched()
					continue
				}
				for _, item := range c {
					var local []uint32
					fn(item, func(items []uint32) {
						local = append(local, items...)
					})
					if len(local) > 0 {
						w.Push(local)
					}
					w.pending.Add(-1)
				}
			}
		}()
	}
	wg.Wait()
}

// BFSAsync runs an asynchronous label-correcting BFS from src: workers relax
// edges from the worklist with atomic distance updates, re-queueing improved
// vertices. This is the classic Galois BFS formulation (synchronous-free, no
// direction optimization). Returns hop distances (-1 unreached).
func BFSAsync(g ligra.Graph, src uint32) []int32 {
	n := g.Order()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = 1<<31 - 1
	}
	if int(src) >= n {
		for i := range dist {
			dist[i] = -1
		}
		return dist
	}
	atomic.StoreInt32(&dist[src], 0)
	wl := New()
	wl.Push([]uint32{src})
	wl.Run(func(u uint32, push func([]uint32)) {
		du := atomic.LoadInt32(&dist[u])
		var next []uint32
		g.ForEachNeighbor(u, func(v uint32) bool {
			for {
				dv := atomic.LoadInt32(&dist[v])
				if dv <= du+1 {
					return true
				}
				if atomic.CompareAndSwapInt32(&dist[v], dv, du+1) {
					next = append(next, v)
					return true
				}
			}
		})
		push(next)
	})
	for i := range dist {
		if dist[i] == 1<<31-1 {
			dist[i] = -1
		}
	}
	return dist
}

// MISSerial computes a maximal independent set by the sequential greedy
// algorithm in vertex order. Galois's MIS implementations run orders of
// magnitude slower than Ligra-style rootset MIS on mesh-free graphs (Table
// 12); the serial greedy captures that asymmetric baseline.
func MISSerial(g ligra.Graph) []bool {
	n := g.Order()
	in := make([]bool, n)
	blocked := make([]bool, n)
	for v := 0; v < n; v++ {
		if blocked[v] {
			continue
		}
		in[v] = true
		g.ForEachNeighbor(uint32(v), func(u uint32) bool {
			blocked[u] = true
			return true
		})
	}
	return in
}
