// Package aspen implements the Aspen graph-streaming framework (paper §5–§6):
// an undirected graph represented as a purely-functional vertex-tree whose
// values are C-trees of neighbor ids (a tree of compressed trees, Figure 4),
// with lightweight snapshots, functional batch updates, flat snapshots for
// global algorithms, and a single-writer / multi-reader versioned graph that
// provides strictly serializable concurrent updates and queries. The batch
// machinery (batch.go) is generic over a fixed-width edge payload: Graph is
// the id-only instantiation and WeightedGraph (weighted.go) the float32 one,
// both riding the same compressed chunks.
//
// All Graph methods are read-only or functional: updates return a new Graph
// that shares almost all structure with the old one, so existing snapshots
// are never disturbed. Use VersionedGraph to coordinate a writer with
// concurrent readers.
package aspen

import (
	"repro/internal/ctree"
	"repro/internal/parallel"
	"repro/internal/pftree"
)

// Edge is a directed edge update. Undirected graphs insert both directions
// (the harness helper MakeUndirected does this).
type Edge struct {
	Src, Dst uint32
}

// Graph is an immutable snapshot of an undirected graph. The zero Graph uses
// unusable parameters; construct with NewGraph or FromAdjacency.
type Graph struct {
	p  ctree.Params
	vt *vnode[struct{}]
}

// NewGraph returns an empty graph whose edge trees use params p.
func NewGraph(p ctree.Params) Graph { return Graph{p: p} }

// FromAdjacency builds a graph from adjacency lists: adj[u] lists the
// neighbors of vertex u (they will be sorted and deduplicated). Every index
// of adj becomes a vertex, including isolated ones.
func FromAdjacency(p ctree.Params, adj [][]uint32) Graph {
	entries := make([]pftree.Entry[uint32, ctree.Set], len(adj))
	parallel.ForGrain(len(adj), 64, func(u int) {
		nbrs := append([]uint32(nil), adj[u]...)
		parallel.SortUint32(nbrs)
		nbrs = parallel.DedupSortedUint32(nbrs)
		entries[u] = pftree.Entry[uint32, ctree.Set]{Key: uint32(u), Val: ctree.Build(p, nbrs)}
	})
	return Graph{p: p, vt: vops.BuildSorted(entries)}
}

// Params returns the edge-tree parameters of g.
func (g Graph) Params() ctree.Params { return g.p }

// NumVertices returns the number of vertices, in O(1).
func (g Graph) NumVertices() int { return g.vt.Size() }

// NumEdges returns the number of directed edges, in O(1) via the vertex-tree
// augmentation.
func (g Graph) NumEdges() uint64 { return vops.AugOf(g.vt) }

// Order returns the size of the vertex-id space (max id + 1); algorithm
// state arrays are indexed by vertex id.
func (g Graph) Order() int {
	last := vops.Last(g.vt)
	if last == nil {
		return 0
	}
	return int(last.Key()) + 1
}

// HasVertex reports whether u is a vertex of g.
func (g Graph) HasVertex(u uint32) bool {
	_, ok := vops.Find(g.vt, u)
	return ok
}

// EdgeTree returns u's edge C-tree. O(log n).
func (g Graph) EdgeTree(u uint32) (ctree.Set, bool) {
	return vops.Find(g.vt, u)
}

// Degree returns the degree of u (0 for absent vertices). O(log n).
func (g Graph) Degree(u uint32) int {
	et, ok := vops.Find(g.vt, u)
	if !ok {
		return 0
	}
	return int(et.Size())
}

// HasEdge reports whether the directed edge (u, v) exists.
func (g Graph) HasEdge(u, v uint32) bool {
	et, ok := vops.Find(g.vt, u)
	return ok && et.Contains(v)
}

// ForEachNeighbor applies f to u's neighbors in increasing order until f
// returns false.
func (g Graph) ForEachNeighbor(u uint32, f func(v uint32) bool) {
	if et, ok := vops.Find(g.vt, u); ok {
		et.ForEach(f)
	}
}

// ForEachNeighborPar applies f to u's neighbors with edge-tree parallelism
// (unordered). Tree-structured adjacency makes intra-vertex parallelism
// possible — the capability §7.5 credits for Aspen's fast traversals of
// high-degree vertices.
func (g Graph) ForEachNeighborPar(u uint32, f func(v uint32)) {
	if et, ok := vops.Find(g.vt, u); ok {
		et.ForEachPar(f)
	}
}

// ForEachVertex applies f to every (vertex, edge-tree) pair in id order
// until f returns false.
func (g Graph) ForEachVertex(f func(u uint32, et ctree.Set) bool) {
	vops.ForEach(g.vt, f)
}

// ForEachVertexPar applies f to every vertex in parallel.
func (g Graph) ForEachVertexPar(f func(u uint32, et ctree.Set)) {
	vops.ForEachPar(g.vt, f)
}

// sortEdgeBatch encodes, sorts and dedupes a batch of directed edges,
// returning packed (src<<32 | dst) keys. The parallel LSD radix sort makes
// this O(k) work per populated key byte.
func sortEdgeBatch(edges []Edge) []uint64 {
	packed := make([]uint64, len(edges))
	parallel.For(len(edges), func(i int) {
		packed[i] = uint64(edges[i].Src)<<32 | uint64(edges[i].Dst)
	})
	parallel.RadixSortUint64(packed)
	return parallel.DedupSortedUint64(packed)
}

// InsertEdges returns a graph with the batch inserted (duplicates combined).
// Vertices appearing as sources or destinations are created as needed; the
// whole batch is one radix sort plus one fused vertex-tree pass (batch.go).
// O(k log n) work, polylog depth.
func (g Graph) InsertEdges(edges []Edge) Graph {
	if len(edges) == 0 {
		return g
	}
	packed := sortEdgeBatch(edges)
	return Graph{p: g.p, vt: insertEdgesCore(vops, g.p, g.vt, packed, nil, nil)}
}

// DeleteEdges returns a graph with the batch removed; absent edges are
// ignored and vertices are kept even at degree zero (the paper makes
// singleton removal optional — see DeleteEdgesGC for the opt-in).
func (g Graph) DeleteEdges(edges []Edge) Graph {
	if len(edges) == 0 {
		return g
	}
	packed := sortEdgeBatch(edges)
	return Graph{p: g.p, vt: deleteEdgesCore(vops, g.p, g.vt, packed, false)}
}

// DeleteEdgesGC is DeleteEdges with the isolated-vertex GC opted in: any
// vertex whose edge tree becomes empty is dropped from the vertex-tree in
// the same pass. Intended for symmetric graphs, where deletes arrive in
// both directions and so both endpoints empty out together.
func (g Graph) DeleteEdgesGC(edges []Edge) Graph {
	if len(edges) == 0 {
		return g
	}
	packed := sortEdgeBatch(edges)
	return Graph{p: g.p, vt: deleteEdgesCore(vops, g.p, g.vt, packed, true)}
}

// CollectIsolated returns a graph without its degree-zero vertices — the
// full-sweep form of the isolated-vertex GC. O(n).
func (g Graph) CollectIsolated() Graph {
	return Graph{p: g.p, vt: collectIsolatedCore(vops, g.vt)}
}

// InsertVertices adds the given vertex ids with empty edge trees.
func (g Graph) InsertVertices(ids []uint32) Graph {
	if len(ids) == 0 {
		return g
	}
	sorted := append([]uint32(nil), ids...)
	parallel.SortUint32(sorted)
	sorted = parallel.DedupSortedUint32(sorted)
	entries := make([]pftree.Entry[uint32, ctree.Set], len(sorted))
	for i, id := range sorted {
		entries[i] = pftree.Entry[uint32, ctree.Set]{Key: id, Val: ctree.New(g.p)}
	}
	root := vops.MultiInsert(g.vt, entries, func(old, _ ctree.Set) ctree.Set { return old })
	return Graph{p: g.p, vt: root}
}

// DeleteVertices removes the given vertices and every edge incident to them
// (the induced-subgraph semantics of the paper's interface, G[V \ V']).
func (g Graph) DeleteVertices(ids []uint32) Graph {
	if len(ids) == 0 {
		return g
	}
	sorted := append([]uint32(nil), ids...)
	parallel.SortUint32(sorted)
	sorted = parallel.DedupSortedUint32(sorted)
	root := vops.MultiDelete(g.vt, sorted)
	// Strip edges pointing at the removed vertices from every survivor.
	del := ctree.Build(g.p, sorted)
	entries := make([]pftree.Entry[uint32, ctree.Set], 0, root.Size())
	vops.ForEach(root, func(u uint32, et ctree.Set) bool {
		entries = append(entries, pftree.Entry[uint32, ctree.Set]{Key: u, Val: et})
		return true
	})
	parallel.ForGrain(len(entries), 16, func(i int) {
		entries[i].Val = entries[i].Val.Difference(del)
	})
	return Graph{p: g.p, vt: vops.BuildSorted(entries)}
}

// Stats aggregates the memory shape of the whole graph: vertex-tree nodes
// plus all edge C-trees. Used by the space experiments.
type Stats struct {
	VertexNodes int
	Edge        ctree.Stats
}

// Stats walks the graph and returns its memory shape.
func (g Graph) Stats() Stats {
	s := Stats{VertexNodes: g.vt.Size()}
	vops.ForEach(g.vt, func(_ uint32, et ctree.Set) bool {
		s.Edge.Add(et.Stats())
		return true
	})
	return s
}

// MakeUndirected duplicates each edge in both directions, the form batch
// updates on symmetric graphs use (paper §7.3 inserts each undirected edge
// as two directed updates within a single batch).
func MakeUndirected(edges []Edge) []Edge {
	out := make([]Edge, 0, 2*len(edges))
	for _, e := range edges {
		out = append(out, e, Edge{Src: e.Dst, Dst: e.Src})
	}
	return out
}
