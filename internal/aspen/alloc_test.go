package aspen

import (
	"testing"

	"repro/internal/ctree"
)

// TestInsertEdgesSmallBatchAllocBound is the allocation regression test for
// the batch-update hot path. The streaming chunk pipeline plus the fused
// vertex/edge MultiInsert put a 4-edge undirected batch at ~57 allocs/op;
// the bound leaves headroom for scheduler noise while catching any return
// of the old per-run copies and double vertex-tree passes (which cost >100).
func TestInsertEdgesSmallBatchAllocBound(t *testing.T) {
	g := NewGraph(ctree.DefaultParams())
	g = g.InsertEdges([]Edge{{1, 2}, {2, 1}, {3, 4}, {4, 3}})
	batch := []Edge{{10, 20}, {20, 10}, {5, 7}, {7, 5}}
	if n := testing.AllocsPerRun(200, func() { g.InsertEdges(batch) }); n > 80 {
		t.Errorf("small-batch InsertEdges allocated %.1f/op, want <= 80", n)
	}
}

// TestGroupBySourceSharesBacking verifies the zero-copy grouping: all runs
// must be subslices of one backing array, contiguous and in order.
func TestGroupBySourceSharesBacking(t *testing.T) {
	packed := []uint64{
		1<<32 | 5, 1<<32 | 9,
		3<<32 | 2,
		7<<32 | 1, 7<<32 | 4, 7<<32 | 8,
	}
	srcs, dsts := groupBySource(packed)
	wantSrcs := []uint32{1, 3, 7}
	wantDsts := [][]uint32{{5, 9}, {2}, {1, 4, 8}}
	if len(srcs) != len(wantSrcs) {
		t.Fatalf("got %d runs, want %d", len(srcs), len(wantSrcs))
	}
	for i := range srcs {
		if srcs[i] != wantSrcs[i] {
			t.Errorf("srcs[%d] = %d, want %d", i, srcs[i], wantSrcs[i])
		}
		if len(dsts[i]) != len(wantDsts[i]) {
			t.Fatalf("dsts[%d] has %d elems, want %d", i, len(dsts[i]), len(wantDsts[i]))
		}
		for j := range dsts[i] {
			if dsts[i][j] != wantDsts[i][j] {
				t.Errorf("dsts[%d][%d] = %d, want %d", i, j, dsts[i][j], wantDsts[i][j])
			}
		}
	}
	// Adjacent runs must be contiguous in one backing array: each run's
	// capacity extends through every later run (a per-run copy would have
	// cap == len).
	for i := 1; i < len(dsts); i++ {
		prev, cur := dsts[i-1], dsts[i]
		if cap(prev) < len(prev)+len(cur) {
			t.Errorf("run %d does not extend into run %d's storage; runs were copied", i-1, i)
		}
		if &prev[:len(prev)+1][len(prev)] != &cur[0] {
			t.Errorf("run %d does not start where run %d ends", i, i-1)
		}
	}
	if srcs2, dsts2 := groupBySource(nil); srcs2 != nil || dsts2 != nil {
		t.Error("groupBySource(nil) should return nil slices")
	}
}

// TestInsertEdgesCreatesDestinationVertices pins the fused missing-vertex
// pass: destination-only endpoints must exist after a single InsertEdges.
func TestInsertEdgesCreatesDestinationVertices(t *testing.T) {
	g := NewGraph(ctree.DefaultParams())
	g = g.InsertEdges([]Edge{{1, 100}, {2, 100}, {1, 200}})
	for _, u := range []uint32{1, 2, 100, 200} {
		if !g.HasVertex(u) {
			t.Errorf("vertex %d missing after InsertEdges", u)
		}
	}
	if g.Degree(100) != 0 {
		t.Errorf("destination-only vertex 100 has degree %d, want 0 (directed)", g.Degree(100))
	}
	if !g.HasEdge(1, 100) || !g.HasEdge(1, 200) || !g.HasEdge(2, 100) {
		t.Error("edges missing after InsertEdges")
	}
	if g.NumEdges() != 3 {
		t.Errorf("NumEdges = %d, want 3", g.NumEdges())
	}
	// A destination that is also a source must keep its edges.
	g2 := g.InsertEdges([]Edge{{100, 1}, {5, 100}})
	if !g2.HasEdge(100, 1) || !g2.HasEdge(5, 100) || !g2.HasVertex(5) {
		t.Error("mixed source/destination batch mishandled")
	}
}
