package aspen

import (
	"repro/internal/ctree"
	"repro/internal/parallel"
)

// FlatView is a dense, id-indexed view of one immutable graph version: one
// edge C-tree handle per vertex id plus its degree. It removes the O(log n)
// vertex-tree lookup from every edgeMap access — the §5.1 flat-snapshot
// optimization that makes global algorithms on Aspen competitive with
// static CSR — generically over the edge payload V, so the weighted graph
// gets the same fast path as the unweighted one.
//
// A flat view is tied to exactly the snapshot it was built from. Snapshots
// are purely functional: InsertEdges/DeleteEdges return NEW graphs and
// never disturb the one the view indexes, so the view can never be
// "invalidated" — but it also never sees later updates. Build a new view
// per version (or let stream.Tx.Flat cache one per version); Current
// reports whether a view still matches a given snapshot. Degree and
// ForEachNeighbor are total: ids outside the id space (or absent vertices)
// yield degree 0 and an empty neighbor iteration rather than a panic.
type FlatView[V ctree.Value] struct {
	trees    []ctree.Tree[V]
	present  []bool
	degrees  []int32
	order    int
	numEdges uint64
	root     *vnode[V] // identity of the snapshot the view was built from
}

// FlatSnapshot is the unweighted flat view (the paper's original §5.1
// structure). It satisfies ligra.Graph, ligra.ParallelNeighborGraph and
// ligra.FlatGraph.
type FlatSnapshot struct {
	FlatView[struct{}]
}

// FlatWeightedSnapshot is the flat view of a WeightedGraph. It additionally
// satisfies ligra.WeightedGraph and ligra.FlatWeightedGraph, so weighted
// kernels (SSSP) skip the vertex-tree lookups too.
type FlatWeightedSnapshot struct {
	FlatView[float32]
}

// buildFlatView materializes the dense view with an indexed parallel
// vertex-tree traversal: the tree's in-order ranks are partitioned into
// per-worker ranges and each worker walks its range with one rank-pruned
// descent (pftree.ForEachRankRange) — O(n) work, O(n/P + log n) depth, as
// §5.1 specifies. Safe to run concurrently with updates: it only reads the
// persistent version.
func buildFlatView[V ctree.Value](ops *vopsT[V], vt *vnode[V], order int, numEdges uint64) FlatView[V] {
	fv := FlatView[V]{
		trees:    make([]ctree.Tree[V], order),
		present:  make([]bool, order),
		degrees:  make([]int32, order),
		order:    order,
		numEdges: numEdges,
		root:     vt,
	}
	fill := func(u uint32, et ctree.Tree[V]) bool {
		fv.trees[u] = et
		fv.present[u] = true
		fv.degrees[u] = int32(et.Size())
		return true
	}
	n := vt.Size()
	nb := parallel.Procs * 4
	if nb > n {
		nb = n
	}
	if nb <= 1 {
		ops.ForEachRankRange(vt, 0, n, fill)
		return fv
	}
	sz := (n + nb - 1) / nb
	parallel.ForGrain(nb, 1, func(b int) {
		lo, hi := b*sz, (b+1)*sz
		if hi > n {
			hi = n
		}
		if lo < hi {
			ops.ForEachRankRange(vt, lo, hi, fill)
		}
	})
	return fv
}

// BuildFlatSnapshot materializes the flat view of g.
func BuildFlatSnapshot(g Graph) *FlatSnapshot {
	return &FlatSnapshot{buildFlatView(vops, g.vt, g.Order(), g.NumEdges())}
}

// BuildFlatWeightedSnapshot materializes the flat view of the weighted g.
func BuildFlatWeightedSnapshot(g WeightedGraph) *FlatWeightedSnapshot {
	return &FlatWeightedSnapshot{buildFlatView(wvops, g.vt, g.Order(), g.NumEdges())}
}

// Order returns the vertex-id space size.
func (fv *FlatView[V]) Order() int { return fv.order }

// NumEdges returns the number of directed edges of the underlying version.
func (fv *FlatView[V]) NumEdges() uint64 { return fv.numEdges }

// Degree returns the degree of u in O(1). Total: out-of-range or absent ids
// have degree 0.
func (fv *FlatView[V]) Degree(u uint32) int {
	if int(u) >= fv.order {
		return 0
	}
	return int(fv.degrees[u])
}

// Degrees exposes the id-indexed degree array (length Order) — the
// ligra.FlatGraph capability. Callers must not mutate it; schedulers use it
// for exact work-based partitioning.
func (fv *FlatView[V]) Degrees() []int32 { return fv.degrees }

// HasVertex reports whether u is a vertex of the underlying version.
func (fv *FlatView[V]) HasVertex(u uint32) bool {
	return int(u) < fv.order && fv.present[u]
}

// ForEachNeighbor applies f to u's neighbors in increasing order until f
// returns false. O(1) access to the edge tree; total on out-of-range ids.
func (fv *FlatView[V]) ForEachNeighbor(u uint32, f func(v uint32) bool) {
	if int(u) >= fv.order || !fv.present[u] {
		return
	}
	fv.trees[u].ForEach(f)
}

// ForEachNeighborPar applies f to u's neighbors with edge-tree parallelism
// (unordered).
func (fv *FlatView[V]) ForEachNeighborPar(u uint32, f func(v uint32)) {
	if int(u) >= fv.order || !fv.present[u] {
		return
	}
	fv.trees[u].ForEachPar(f)
}

// ForEachNeighborKV applies f to u's (neighbor, payload) pairs in increasing
// neighbor order until f returns false.
func (fv *FlatView[V]) ForEachNeighborKV(u uint32, f func(v uint32, val V) bool) {
	if int(u) >= fv.order || !fv.present[u] {
		return
	}
	fv.trees[u].ForEachKV(f)
}

// EdgeTree returns u's edge tree in O(1).
func (fv *FlatView[V]) EdgeTree(u uint32) (ctree.Tree[V], bool) {
	if !fv.HasVertex(u) {
		return ctree.Tree[V]{}, false
	}
	return fv.trees[u], true
}

// MemoryBytes returns the analytic size of the flat view itself: one
// pointer-sized slot plus one degree word and one presence byte per id (the
// "Flat Snap." column of Table 2 counts exactly the pointer array).
func (fv *FlatView[V]) MemoryBytes() uint64 {
	return uint64(fv.order) * (8 + 4 + 1)
}

// sameRoot reports whether the view was built from exactly the given
// vertex-tree root (pointer identity — functional updates always produce a
// fresh root).
func (fv *FlatView[V]) sameRoot(root *vnode[V]) bool { return fv.root == root }

// Current reports whether fs still reflects g — i.e. it was built from g's
// exact immutable snapshot. A false result means g is a different (typically
// newer) version and the view, while still safe to use, answers queries
// about the version it was built from. Compiled with -tags aspendebug,
// MustCurrent turns a mismatch into a panic.
func (fs *FlatSnapshot) Current(g Graph) bool { return fs.sameRoot(g.vt) }

// Current is the weighted analogue of FlatSnapshot.Current.
func (fs *FlatWeightedSnapshot) Current(g WeightedGraph) bool { return fs.sameRoot(g.vt) }

// MustCurrent panics when fs was not built from g's exact snapshot. The
// check runs only under the aspendebug build tag; release builds compile it
// to nothing, so hot paths may call it unconditionally.
func (fs *FlatSnapshot) MustCurrent(g Graph) {
	if flatDebug && !fs.Current(g) {
		panic("aspen: flat snapshot is stale for this graph version")
	}
}

// MustCurrent is the weighted analogue of FlatSnapshot.MustCurrent.
func (fs *FlatWeightedSnapshot) MustCurrent(g WeightedGraph) {
	if flatDebug && !fs.Current(g) {
		panic("aspen: flat snapshot is stale for this graph version")
	}
}

// Weight returns the weight of edge (u, v) in O(1) tree access.
func (fs *FlatWeightedSnapshot) Weight(u, v uint32) (float32, bool) {
	et, ok := fs.EdgeTree(u)
	if !ok {
		return 0, false
	}
	return et.Find(v)
}

// ForEachNeighborW applies f to u's (neighbor, weight) pairs in increasing
// neighbor order until f returns false — the ligra.WeightedGraph capability.
func (fs *FlatWeightedSnapshot) ForEachNeighborW(u uint32, f func(v uint32, w float32) bool) {
	fs.ForEachNeighborKV(u, f)
}
