package aspen

import (
	"repro/internal/ctree"
	"repro/internal/parallel"
)

// Flat-view slot storage is paged so that patching a new version's view out
// of its predecessor's can copy-on-write only the pages the version diff
// touches: flatPageSize vertices per page, pages untouched by a batch are
// aliased between chained views. The batch's touched vertices are scattered
// (graph updates have no id locality), so a patch copies roughly one page
// per touched vertex no matter the page size — which makes small pages
// win: 16 slots keeps the per-touched-vertex copy under a cache line's
// worth of tree handles, while the page table that every patch must copy
// stays at 1/16th of a slot-per-id table. (One backing allocation still
// serves a full build, so build cost is unaffected.)
const (
	flatPageBits = 4
	flatPageSize = 1 << flatPageBits
	flatPageMask = flatPageSize - 1
)

// flatPage holds the per-vertex edge-tree handles and presence bits of one
// aligned id range [p<<flatPageBits, (p+1)<<flatPageBits).
type flatPage[V ctree.Value] struct {
	trees   [flatPageSize]ctree.Tree[V]
	present [flatPageSize]bool
}

// FlatView is a dense, id-indexed view of one immutable graph version: one
// edge C-tree handle per vertex id plus its degree. It removes the O(log n)
// vertex-tree lookup from every edgeMap access — the §5.1 flat-snapshot
// optimization that makes global algorithms on Aspen competitive with
// static CSR — generically over the edge payload V, so the weighted graph
// gets the same fast path as the unweighted one.
//
// A flat view is tied to exactly the snapshot it was built from. Snapshots
// are purely functional: InsertEdges/DeleteEdges return NEW graphs and
// never disturb the one the view indexes, so the view can never be
// "invalidated" — but it also never sees later updates. Build a new view
// per version (or let stream.Tx.Flat cache one per version), or derive it
// from the previous version's view with PatchFlatSnapshot in O(batch);
// Current reports whether a view still matches a given snapshot. Degree and
// ForEachNeighbor are total: ids outside the id space (or absent vertices)
// yield degree 0 and an empty neighbor iteration rather than a panic.
//
// Slot storage (tree handles + presence) is paged; a patched view aliases
// every page the version diff did not touch, copying only the rest
// (owned tracks which is which, for MemoryBytes). The degree array stays
// one contiguous id-indexed slice — ligra's flat routing consumes it for
// work-based frontier partitioning — and is copied per view, a pure memmove
// that is two orders of magnitude cheaper than rebuilding it from tree
// traversals. Views are immutable once returned, so chained views can
// share pages freely across any number of concurrent readers.
type FlatView[V ctree.Value] struct {
	pages    []*flatPage[V]
	owned    []bool // owned[p]: pages[p] was allocated by this view, not aliased
	degrees  []int32
	order    int
	numEdges uint64
	root     *vnode[V] // identity of the snapshot the view was built from
}

// FlatSnapshot is the unweighted flat view (the paper's original §5.1
// structure). It satisfies ligra.Graph, ligra.ParallelNeighborGraph and
// ligra.FlatGraph.
type FlatSnapshot struct {
	FlatView[struct{}]
}

// FlatWeightedSnapshot is the flat view of a WeightedGraph. It additionally
// satisfies ligra.WeightedGraph and ligra.FlatWeightedGraph, so weighted
// kernels (SSSP) skip the vertex-tree lookups too.
type FlatWeightedSnapshot struct {
	FlatView[float32]
}

// flatPageCount returns the number of pages covering an id space of size
// order.
func flatPageCount(order int) int {
	return (order + flatPageSize - 1) >> flatPageBits
}

// buildFlatView materializes the dense view with an indexed parallel
// vertex-tree traversal: the tree's in-order ranks are partitioned into
// per-worker ranges and each worker walks its range with one rank-pruned
// descent (pftree.ForEachRankRange) — O(n) work, O(n/P + log n) depth, as
// §5.1 specifies. Safe to run concurrently with updates: it only reads the
// persistent version. All pages come from one backing allocation and are
// owned by the view.
func buildFlatView[V ctree.Value](ops *vopsT[V], vt *vnode[V], order int, numEdges uint64) FlatView[V] {
	np := flatPageCount(order)
	backing := make([]flatPage[V], np)
	fv := FlatView[V]{
		pages:    make([]*flatPage[V], np),
		owned:    make([]bool, np),
		degrees:  make([]int32, order),
		order:    order,
		numEdges: numEdges,
		root:     vt,
	}
	for i := range fv.pages {
		fv.pages[i] = &backing[i]
		fv.owned[i] = true
	}
	fill := func(u uint32, et ctree.Tree[V]) bool {
		pg := fv.pages[u>>flatPageBits]
		pg.trees[u&flatPageMask] = et
		pg.present[u&flatPageMask] = true
		fv.degrees[u] = int32(et.Size())
		return true
	}
	n := vt.Size()
	nb := parallel.Procs * 4
	if nb > n {
		nb = n
	}
	if nb <= 1 {
		ops.ForEachRankRange(vt, 0, n, fill)
		return fv
	}
	sz := (n + nb - 1) / nb
	parallel.ForGrain(nb, 1, func(b int) {
		lo, hi := b*sz, (b+1)*sz
		if hi > n {
			hi = n
		}
		if lo < hi {
			ops.ForEachRankRange(vt, lo, hi, fill)
		}
	})
	return fv
}

// patchFlatView derives the flat view of the version rooted at vt from the
// previous version's view, paying O(diff) instead of O(n) tree work: the
// vertex-tree diff (pruned by pointer sharing) enumerates exactly the
// touched vertices, each touched page is copied once (copy-on-write) and
// every other page is aliased from prev. The degree array is copied
// wholesale (a memmove) and patched per touched vertex, keeping it
// contiguous for ligra's flat routing. prev is never mutated — it and the
// result serve concurrent readers of their respective versions.
func patchFlatView[V ctree.Value](ops *vopsT[V], prev *FlatView[V], vt *vnode[V], order int, numEdges uint64) FlatView[V] {
	np := flatPageCount(order)
	fv := FlatView[V]{
		pages:    make([]*flatPage[V], np),
		owned:    make([]bool, np),
		degrees:  make([]int32, order),
		order:    order,
		numEdges: numEdges,
		root:     vt,
	}
	copy(fv.pages, prev.pages) // aliased until touched; nil beyond prev's space
	copy(fv.degrees, prev.degrees)
	// Copied pages come from slab allocations: a batch touches its pages in
	// ascending id order, so grabbing pages off a chunk keeps the patch at a
	// handful of allocations instead of one per touched page.
	var slab []flatPage[V]
	diffVersionsCore(ops, prev.root, vt, func(d VertexDelta[V]) bool {
		u := d.ID
		if int(u) >= order {
			// A vertex removed beyond the (shrunk) id space has no slot to
			// clear; stale slots in aliased pages past order are never read
			// (every accessor bounds-checks against order first).
			return true
		}
		pi := int(u) >> flatPageBits
		if !fv.owned[pi] {
			if len(slab) == 0 {
				slab = make([]flatPage[V], 256)
			}
			pg := &slab[0]
			slab = slab[1:]
			if shared := fv.pages[pi]; shared != nil {
				*pg = *shared
			}
			fv.pages[pi], fv.owned[pi] = pg, true
		}
		pg, s := fv.pages[pi], u&flatPageMask
		if d.Kind == DiffRemoved {
			pg.trees[s], pg.present[s] = ctree.Tree[V]{}, false
			fv.degrees[u] = 0
		} else {
			pg.trees[s], pg.present[s] = d.New, true
			fv.degrees[u] = int32(d.New.Size())
		}
		return true
	})
	return fv
}

// BuildFlatSnapshot materializes the flat view of g.
func BuildFlatSnapshot(g Graph) *FlatSnapshot {
	return &FlatSnapshot{buildFlatView(vops, g.vt, g.Order(), g.NumEdges())}
}

// BuildFlatWeightedSnapshot materializes the flat view of the weighted g.
func BuildFlatWeightedSnapshot(g WeightedGraph) *FlatWeightedSnapshot {
	return &FlatWeightedSnapshot{buildFlatView(wvops, g.vt, g.Order(), g.NumEdges())}
}

// PatchFlatSnapshot returns the flat view of g derived from prev, a view of
// an earlier (or later — the diff is two-sided) version of the same graph
// lineage, in O(batch) copy-on-write work instead of an O(n) rebuild. A nil
// prev falls back to a full build; a prev already current for g is returned
// as-is. The result is equivalent to BuildFlatSnapshot(g) in every
// observable way.
func PatchFlatSnapshot(prev *FlatSnapshot, g Graph) *FlatSnapshot {
	if prev == nil {
		return BuildFlatSnapshot(g)
	}
	if prev.root == g.vt {
		return prev
	}
	return &FlatSnapshot{patchFlatView(vops, &prev.FlatView, g.vt, g.Order(), g.NumEdges())}
}

// PatchFlatWeightedSnapshot is the weighted analogue of PatchFlatSnapshot.
func PatchFlatWeightedSnapshot(prev *FlatWeightedSnapshot, g WeightedGraph) *FlatWeightedSnapshot {
	if prev == nil {
		return BuildFlatWeightedSnapshot(g)
	}
	if prev.root == g.vt {
		return prev
	}
	return &FlatWeightedSnapshot{patchFlatView(wvops, &prev.FlatView, g.vt, g.Order(), g.NumEdges())}
}

// Order returns the vertex-id space size.
func (fv *FlatView[V]) Order() int { return fv.order }

// NumEdges returns the number of directed edges of the underlying version.
func (fv *FlatView[V]) NumEdges() uint64 { return fv.numEdges }

// Degree returns the degree of u in O(1). Total: out-of-range or absent ids
// have degree 0.
func (fv *FlatView[V]) Degree(u uint32) int {
	if int(u) >= fv.order {
		return 0
	}
	return int(fv.degrees[u])
}

// Degrees exposes the id-indexed degree array (length Order) — the
// ligra.FlatGraph capability. Callers must not mutate it; schedulers use it
// for exact work-based partitioning.
func (fv *FlatView[V]) Degrees() []int32 { return fv.degrees }

// page returns u's slot page and index; the nil page means an id range no
// version ever populated.
func (fv *FlatView[V]) page(u uint32) (*flatPage[V], uint32) {
	return fv.pages[u>>flatPageBits], u & flatPageMask
}

// HasVertex reports whether u is a vertex of the underlying version.
func (fv *FlatView[V]) HasVertex(u uint32) bool {
	if int(u) >= fv.order {
		return false
	}
	pg, s := fv.page(u)
	return pg != nil && pg.present[s]
}

// ForEachNeighbor applies f to u's neighbors in increasing order until f
// returns false. O(1) access to the edge tree; total on out-of-range ids.
func (fv *FlatView[V]) ForEachNeighbor(u uint32, f func(v uint32) bool) {
	if int(u) >= fv.order {
		return
	}
	if pg, s := fv.page(u); pg != nil && pg.present[s] {
		pg.trees[s].ForEach(f)
	}
}

// ForEachNeighborPar applies f to u's neighbors with edge-tree parallelism
// (unordered).
func (fv *FlatView[V]) ForEachNeighborPar(u uint32, f func(v uint32)) {
	if int(u) >= fv.order {
		return
	}
	if pg, s := fv.page(u); pg != nil && pg.present[s] {
		pg.trees[s].ForEachPar(f)
	}
}

// ForEachNeighborKV applies f to u's (neighbor, payload) pairs in increasing
// neighbor order until f returns false.
func (fv *FlatView[V]) ForEachNeighborKV(u uint32, f func(v uint32, val V) bool) {
	if int(u) >= fv.order {
		return
	}
	if pg, s := fv.page(u); pg != nil && pg.present[s] {
		pg.trees[s].ForEachKV(f)
	}
}

// EdgeTree returns u's edge tree in O(1).
func (fv *FlatView[V]) EdgeTree(u uint32) (ctree.Tree[V], bool) {
	if int(u) >= fv.order {
		return ctree.Tree[V]{}, false
	}
	if pg, s := fv.page(u); pg != nil && pg.present[s] {
		return pg.trees[s], true
	}
	return ctree.Tree[V]{}, false
}

// MemoryBytes returns the analytic size of the storage this view uniquely
// owns, at the Table-2 accounting of one pointer-sized slot plus one
// presence byte per id and a 4-byte degree word: the page table, the degree
// array, and every slot page the view allocated itself. Pages aliased from
// the predecessor (patching copies only the pages a batch touches) are
// charged to the view that built them and reported here by
// SharedMemoryBytes, so bytes-per-version stays honest when views chain: a
// freshly built view owns everything, a patched one owns its degree array
// plus O(batch/pageSize) pages.
func (fv *FlatView[V]) MemoryBytes() uint64 {
	owned := 0
	for _, o := range fv.owned {
		if o {
			owned++
		}
	}
	return uint64(len(fv.pages))*(8+1) + uint64(len(fv.degrees))*4 +
		uint64(owned)*flatPageSize*(8+1)
}

// SharedMemoryBytes returns the analytic size of the slot pages this view
// aliases from an ancestor view instead of owning (zero for a freshly built
// view).
func (fv *FlatView[V]) SharedMemoryBytes() uint64 {
	shared := 0
	for i, o := range fv.owned {
		if !o && fv.pages[i] != nil {
			shared++
		}
	}
	return uint64(shared) * flatPageSize * (8 + 1)
}

// sameRoot reports whether the view was built from exactly the given
// vertex-tree root (pointer identity — functional updates always produce a
// fresh root).
func (fv *FlatView[V]) sameRoot(root *vnode[V]) bool { return fv.root == root }

// Current reports whether fs still reflects g — i.e. it was built from g's
// exact immutable snapshot. A false result means g is a different (typically
// newer) version and the view, while still safe to use, answers queries
// about the version it was built from. Compiled with -tags aspendebug,
// MustCurrent turns a mismatch into a panic.
func (fs *FlatSnapshot) Current(g Graph) bool { return fs.sameRoot(g.vt) }

// Current is the weighted analogue of FlatSnapshot.Current.
func (fs *FlatWeightedSnapshot) Current(g WeightedGraph) bool { return fs.sameRoot(g.vt) }

// MustCurrent panics when fs was not built from g's exact snapshot. The
// check runs only under the aspendebug build tag; release builds compile it
// to nothing, so hot paths may call it unconditionally.
func (fs *FlatSnapshot) MustCurrent(g Graph) {
	if flatDebug && !fs.Current(g) {
		panic("aspen: flat snapshot is stale for this graph version")
	}
}

// MustCurrent is the weighted analogue of FlatSnapshot.MustCurrent.
func (fs *FlatWeightedSnapshot) MustCurrent(g WeightedGraph) {
	if flatDebug && !fs.Current(g) {
		panic("aspen: flat snapshot is stale for this graph version")
	}
}

// Weight returns the weight of edge (u, v) in O(1) tree access.
func (fs *FlatWeightedSnapshot) Weight(u, v uint32) (float32, bool) {
	et, ok := fs.EdgeTree(u)
	if !ok {
		return 0, false
	}
	return et.Find(v)
}

// ForEachNeighborW applies f to u's (neighbor, weight) pairs in increasing
// neighbor order until f returns false — the ligra.WeightedGraph capability.
func (fs *FlatWeightedSnapshot) ForEachNeighborW(u uint32, f func(v uint32, w float32) bool) {
	fs.ForEachNeighborKV(u, f)
}
