package aspen

import (
	"repro/internal/ctree"
)

// FlatSnapshot is a dense, id-indexed view of one graph version: a pointer
// (here: a C-tree handle) per vertex plus its degree. It removes the
// O(log n) vertex-tree lookup from every edgeMap access, the optimization of
// §5.1 for global algorithms. Building it is O(n) work and O(log n) depth via
// an indexed parallel traversal of the vertex-tree, and it can be built
// concurrently with updates since it only reads the persistent version.
type FlatSnapshot struct {
	graph   Graph
	trees   []ctree.Set
	present []bool
	degrees []int32
	order   int
}

// BuildFlatSnapshot materializes the flat view of g.
func BuildFlatSnapshot(g Graph) *FlatSnapshot {
	order := g.Order()
	fs := &FlatSnapshot{
		graph:   g,
		trees:   make([]ctree.Set, order),
		present: make([]bool, order),
		degrees: make([]int32, order),
		order:   order,
	}
	vops.ForEachIndexed(g.vt, func(_ int, u uint32, et ctree.Set) {
		fs.trees[u] = et
		fs.present[u] = true
		fs.degrees[u] = int32(et.Size())
	})
	return fs
}

// Graph returns the underlying snapshot.
func (fs *FlatSnapshot) Graph() Graph { return fs.graph }

// Order returns the vertex-id space size.
func (fs *FlatSnapshot) Order() int { return fs.order }

// NumEdges returns the number of directed edges.
func (fs *FlatSnapshot) NumEdges() uint64 { return fs.graph.NumEdges() }

// Degree returns the degree of u in O(1).
func (fs *FlatSnapshot) Degree(u uint32) int {
	if int(u) >= fs.order {
		return 0
	}
	return int(fs.degrees[u])
}

// ForEachNeighbor applies f to u's neighbors in increasing order until f
// returns false. O(1) access to the edge tree.
func (fs *FlatSnapshot) ForEachNeighbor(u uint32, f func(v uint32) bool) {
	if int(u) >= fs.order || !fs.present[u] {
		return
	}
	fs.trees[u].ForEach(f)
}

// ForEachNeighborPar applies f to u's neighbors with edge-tree parallelism
// (unordered).
func (fs *FlatSnapshot) ForEachNeighborPar(u uint32, f func(v uint32)) {
	if int(u) >= fs.order || !fs.present[u] {
		return
	}
	fs.trees[u].ForEachPar(f)
}

// HasVertex reports whether u is a vertex.
func (fs *FlatSnapshot) HasVertex(u uint32) bool {
	return int(u) < fs.order && fs.present[u]
}

// EdgeTree returns u's edge tree in O(1).
func (fs *FlatSnapshot) EdgeTree(u uint32) (ctree.Set, bool) {
	if !fs.HasVertex(u) {
		return ctree.Set{}, false
	}
	return fs.trees[u], true
}

// MemoryBytes returns the analytic size of the flat snapshot itself: one
// pointer-sized slot plus one degree word per id (the "Flat Snap." column of
// Table 2 counts exactly the pointer array).
func (fs *FlatSnapshot) MemoryBytes() uint64 {
	// trees slot (treated as one 8-byte pointer as in the paper) + 4-byte
	// degree + 1-byte presence.
	return uint64(fs.order) * (8 + 4 + 1)
}
