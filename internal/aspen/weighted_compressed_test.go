package aspen

import (
	"testing"

	"repro/internal/ctree"
	"repro/internal/xhash"
)

// rmatEdges samples edges from the rMAT distribution (a=0.5, b=c=0.1,
// d=0.3), inlined here because internal/rmat imports this package.
func rmatEdges(scale int, m int, seed uint64) [][2]uint32 {
	r := xhash.NewRNG(seed)
	out := make([][2]uint32, m)
	for i := range out {
		var u, v uint32
		for bit := scale - 1; bit >= 0; bit-- {
			p := r.Intn(100)
			switch {
			case p < 50: // quadrant a
			case p < 60: // b
				v |= 1 << bit
			case p < 70: // c
				u |= 1 << bit
			default: // d
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		out[i] = [2]uint32{u, v}
	}
	return out
}

// Tests of the compressed weighted graph introduced by the generic-payload
// refactor: differential behavior against a plain map reference (the
// semantics of the old plain-tree WeightedGraph), the isolated-vertex GC,
// and the space acceptance criterion (delta-encoded weighted bytes/edge
// must be at most 60% of the plain-tree weighted representation).

func randomWeightedBatch(r *xhash.RNG, n, idSpace int) []WeightedEdge {
	batch := make([]WeightedEdge, n)
	for i := range batch {
		batch[i] = WeightedEdge{
			Src:    uint32(r.Intn(idSpace)),
			Dst:    uint32(r.Intn(idSpace)),
			Weight: float32(r.Intn(10_000)) / 16,
		}
	}
	return batch
}

// TestWeightedCompressedDifferential drives the compressed weighted graph
// and a map model through interleaved insert/delete rounds at several
// compression settings and demands identical observable state — the
// old plain-tree behavior (LWW weight updates, delete ignores weights)
// expressed as a reference model.
func TestWeightedCompressedDifferential(t *testing.T) {
	for _, p := range []ctree.Params{
		ctree.DefaultParams(),
		{B: 8, Codec: 0}, // small chunks, Delta
		ctree.PlainParams(),
	} {
		r := xhash.NewRNG(42)
		g := NewWeightedGraphWith(p)
		ref := map[uint64]float32{}
		for round := 0; round < 8; round++ {
			ins := randomWeightedBatch(r, 400, 150)
			g = g.InsertEdges(ins)
			for _, e := range ins {
				ref[uint64(e.Src)<<32|uint64(e.Dst)] = e.Weight
			}
			del := randomWeightedBatch(r, 120, 150)
			g = g.DeleteEdges(del)
			for _, e := range del {
				delete(ref, uint64(e.Src)<<32|uint64(e.Dst))
			}
			if int(g.NumEdges()) != len(ref) {
				t.Fatalf("params %+v round %d: m = %d, want %d", p, round, g.NumEdges(), len(ref))
			}
		}
		for k, w := range ref {
			u, v := uint32(k>>32), uint32(k)
			if got, ok := g.Weight(u, v); !ok || got != w {
				t.Fatalf("params %+v: Weight(%d,%d) = %v,%v want %v", p, u, v, got, ok, w)
			}
		}
		// Neighbor enumeration must be sorted and carry the right weights.
		for u := uint32(0); u < 150; u++ {
			var prev int64 = -1
			g.ForEachNeighborW(u, func(v uint32, w float32) bool {
				if int64(v) <= prev {
					t.Fatalf("params %+v: neighbors of %d out of order", p, u)
				}
				prev = int64(v)
				if want := ref[uint64(u)<<32|uint64(v)]; want != w {
					t.Fatalf("params %+v: weight (%d,%d) = %v want %v", p, u, v, w, want)
				}
				return true
			})
		}
	}
}

func TestWeightedInsertEdgesWithMerge(t *testing.T) {
	g := NewWeightedGraph().InsertEdges([]WeightedEdge{{Src: 1, Dst: 2, Weight: 10}})
	g = g.InsertEdgesWith([]WeightedEdge{{Src: 1, Dst: 2, Weight: 5}},
		func(old, new float32) float32 { return old + new })
	if w, _ := g.Weight(1, 2); w != 15 {
		t.Fatalf("additive merge: weight = %v, want 15", w)
	}
}

func TestWeightedPersistenceAcrossBatches(t *testing.T) {
	g0 := NewWeightedGraph().InsertEdges([]WeightedEdge{{Src: 0, Dst: 1, Weight: 1}})
	g1 := g0.InsertEdges([]WeightedEdge{{Src: 0, Dst: 1, Weight: 2}, {Src: 0, Dst: 9, Weight: 9}})
	g2 := g1.DeleteEdges([]WeightedEdge{{Src: 0, Dst: 1}})
	if w, _ := g0.Weight(0, 1); w != 1 {
		t.Fatal("version 0 mutated")
	}
	if w, _ := g1.Weight(0, 1); w != 2 {
		t.Fatal("version 1 wrong")
	}
	if _, ok := g2.Weight(0, 1); ok {
		t.Fatal("version 2 kept deleted edge")
	}
	if w, _ := g2.Weight(0, 9); w != 9 {
		t.Fatal("version 2 lost unrelated edge")
	}
}

func TestDeleteEdgesGC(t *testing.T) {
	und := MakeUndirected([]Edge{{1, 2}, {3, 4}, {3, 5}})
	g := NewGraph(ctree.DefaultParams()).InsertEdges(und)
	if g.NumVertices() != 5 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	// Default DeleteEdges keeps emptied vertices.
	kept := g.DeleteEdges(MakeUndirected([]Edge{{1, 2}}))
	if !kept.HasVertex(1) || !kept.HasVertex(2) {
		t.Fatal("DeleteEdges must keep degree-zero vertices")
	}
	// Opt-in GC drops exactly the emptied endpoints.
	gc := g.DeleteEdgesGC(MakeUndirected([]Edge{{1, 2}}))
	if gc.HasVertex(1) || gc.HasVertex(2) {
		t.Fatal("DeleteEdgesGC kept emptied vertices")
	}
	for _, u := range []uint32{3, 4, 5} {
		if !gc.HasVertex(u) {
			t.Fatalf("DeleteEdgesGC dropped live vertex %d", u)
		}
	}
	// Deleting one of vertex 3's two edges must not drop 3.
	gc2 := g.DeleteEdgesGC(MakeUndirected([]Edge{{3, 4}}))
	if !gc2.HasVertex(3) || gc2.HasVertex(4) {
		t.Fatal("DeleteEdgesGC dropped a vertex that still has edges (or kept an empty one)")
	}
}

func TestCollectIsolated(t *testing.T) {
	g := NewGraph(ctree.DefaultParams()).
		InsertVertices([]uint32{10, 20, 30}).
		InsertEdges(MakeUndirected([]Edge{{1, 2}}))
	cg := g.CollectIsolated()
	if cg.NumVertices() != 2 || !cg.HasVertex(1) || !cg.HasVertex(2) {
		t.Fatalf("CollectIsolated: n = %d", cg.NumVertices())
	}
	if cg.NumEdges() != g.NumEdges() {
		t.Fatal("CollectIsolated changed the edge set")
	}
	// No-op when nothing is isolated: representation is shared.
	if cg2 := cg.CollectIsolated(); cg2.NumVertices() != 2 {
		t.Fatal("idempotence violated")
	}
	// Weighted variant.
	wg := NewWeightedGraph().InsertEdges([]WeightedEdge{{Src: 1, Dst: 2, Weight: 3}})
	wg = wg.DeleteEdges([]WeightedEdge{{Src: 1, Dst: 2}})
	if wg.CollectIsolated().NumVertices() != 0 {
		t.Fatal("weighted CollectIsolated kept isolated vertices")
	}
}

// Analytic per-node sizes of the plain purely-functional weighted tree,
// mirroring internal/bench/memory.go: a pftree node holds key(4) +
// value(4, the weight) + two pointers(16) + size(4) + aug(8) = 36 bytes,
// padded to 40. The compressed format pays 48 bytes per head node plus its
// chunk bytes (gaps + interleaved weights).
const (
	plainWeightedEdgeNode = 40
	ctreeWeightedEdgeNode = 48
)

// TestWeightedBytesPerEdgeRatio is the space acceptance criterion of this
// PR: on an rMAT graph, the delta-encoded weighted representation must
// spend at most 60% of the bytes per edge of the plain-tree weighted
// representation.
func TestWeightedBytesPerEdgeRatio(t *testing.T) {
	edges := rmatEdges(13, 1<<16, 5)
	batch := make([]WeightedEdge, 0, 2*len(edges))
	for _, e := range edges {
		w := float32(xhash.Mix32(e[0]^e[1])%1000) / 8
		batch = append(batch,
			WeightedEdge{Src: e[0], Dst: e[1], Weight: w},
			WeightedEdge{Src: e[1], Dst: e[0], Weight: w})
	}
	comp := NewWeightedGraphWith(ctree.DefaultParams()).InsertEdges(batch)
	plain := NewWeightedGraphWith(ctree.PlainParams()).InsertEdges(batch)
	if comp.NumEdges() != plain.NumEdges() || comp.NumEdges() == 0 {
		t.Fatalf("edge counts differ: %d vs %d", comp.NumEdges(), plain.NumEdges())
	}
	m := float64(comp.NumEdges())
	cs, ps := comp.Stats(), plain.Stats()
	compBytes := float64(cs.Edge.Nodes*ctreeWeightedEdgeNode+cs.Edge.ChunkBytes) / m
	plainBytes := float64(ps.Edge.Nodes*plainWeightedEdgeNode) / m
	t.Logf("weighted bytes/edge: compressed %.2f, plain %.2f (ratio %.2f)",
		compBytes, plainBytes, compBytes/plainBytes)
	if compBytes > 0.6*plainBytes {
		t.Fatalf("compressed weighted representation too large: %.2f bytes/edge vs plain %.2f (> 60%%)",
			compBytes, plainBytes)
	}
}
