package aspen

import (
	"testing"

	"repro/internal/ctree"
	"repro/internal/xhash"
)

// adjacencyOf enumerates the graph's vertex set with each vertex's neighbor
// list, via the vertex tree (so empty-but-present vertices are included).
func adjacencyOf(g Graph) map[uint32][]uint32 {
	adj := map[uint32][]uint32{}
	g.ForEachVertex(func(u uint32, et ctree.Set) bool {
		var ns []uint32
		et.ForEach(func(v uint32) bool { ns = append(ns, v); return true })
		adj[u] = ns
		return true
	})
	return adj
}

// TestDiffVersionsReplay applies DiffVersions' deltas to the old version's
// adjacency and requires the result to equal the new version's — the
// semantic contract of the vertex-level diff — and checks every delta's
// edge refinement against a set comparison of its two trees.
func TestDiffVersionsReplay(t *testing.T) {
	r := xhash.NewRNG(71)
	versions := []Graph{NewGraph(params()).InsertEdges(randomEdges(r, 2000, 400))}
	for step := 0; step < 8; step++ {
		cur := versions[len(versions)-1]
		if step%3 == 2 {
			versions = append(versions, cur.DeleteEdges(randomEdges(r, 500, 400)))
		} else {
			versions = append(versions, cur.InsertEdges(randomEdges(r, 300, 450)))
		}
	}
	for i := 0; i+1 < len(versions); i++ {
		old, cur := versions[i], versions[i+1]
		adj := adjacencyOf(old)
		if !DiffVersions(old, cur, func(d VertexDelta[struct{}]) bool {
			// Edge refinement must match the naive set difference.
			om, nm := map[uint32]bool{}, map[uint32]bool{}
			d.Old.ForEach(func(v uint32) bool { om[v] = true; return true })
			d.New.ForEach(func(v uint32) bool { nm[v] = true; return true })
			d.Edges(func(e uint32, kind ctree.DiffKind, _, _ struct{}) bool {
				switch kind {
				case DiffAdded:
					if om[e] || !nm[e] {
						t.Fatalf("vertex %d: edge %d misclassified added", d.ID, e)
					}
				case DiffRemoved:
					if !om[e] || nm[e] {
						t.Fatalf("vertex %d: edge %d misclassified removed", d.ID, e)
					}
				default:
					t.Fatalf("vertex %d: unweighted edge diff emitted %v", d.ID, kind)
				}
				delete(om, e)
				delete(nm, e)
				return true
			})
			for e := range om {
				if !nm[e] {
					t.Fatalf("vertex %d: removed edge %d not emitted", d.ID, e)
				}
			}
			// Replay the vertex delta.
			switch d.Kind {
			case DiffRemoved:
				delete(adj, d.ID)
			default:
				var ns []uint32
				d.New.ForEach(func(v uint32) bool { ns = append(ns, v); return true })
				adj[d.ID] = ns
			}
			return true
		}) {
			t.Fatal("DiffVersions stopped early")
		}
		want := adjacencyOf(cur)
		if len(adj) != len(want) {
			t.Fatalf("pair %d: replayed %d vertices, want %d", i, len(adj), len(want))
		}
		for u, ns := range want {
			got := adj[u]
			if len(got) != len(ns) {
				t.Fatalf("pair %d vertex %d: replayed degree %d, want %d", i, u, len(got), len(ns))
			}
			for x := range ns {
				if got[x] != ns[x] {
					t.Fatalf("pair %d vertex %d: neighbor %d mismatch", i, u, x)
				}
			}
		}
	}
}

// checkFlatAgainstGraph requires the flat view to agree with the snapshot
// on every observable: header, degrees, presence, neighbor enumeration.
func checkFlatAgainstGraph(t *testing.T, fs *FlatSnapshot, g Graph, ctx string) {
	t.Helper()
	if fs.Order() != g.Order() || fs.NumEdges() != g.NumEdges() {
		t.Fatalf("%s: header mismatch: flat (%d, %d) vs graph (%d, %d)",
			ctx, fs.Order(), fs.NumEdges(), g.Order(), g.NumEdges())
	}
	if len(fs.Degrees()) != g.Order() {
		t.Fatalf("%s: Degrees length = %d, want %d", ctx, len(fs.Degrees()), g.Order())
	}
	for u := uint32(0); int(u) < g.Order(); u++ {
		if fs.Degree(u) != g.Degree(u) {
			t.Fatalf("%s: degree mismatch at %d: %d vs %d", ctx, u, fs.Degree(u), g.Degree(u))
		}
		if fs.HasVertex(u) != g.HasVertex(u) {
			t.Fatalf("%s: presence mismatch at %d", ctx, u)
		}
		var a, b []uint32
		g.ForEachNeighbor(u, func(v uint32) bool { a = append(a, v); return true })
		fs.ForEachNeighbor(u, func(v uint32) bool { b = append(b, v); return true })
		if len(a) != len(b) {
			t.Fatalf("%s: neighbor count mismatch at %d", ctx, u)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: neighbor mismatch at %d", ctx, u)
			}
		}
	}
	if !fs.Current(g) {
		t.Fatalf("%s: view does not identify as current for its graph", ctx)
	}
}

// TestPatchFlatSnapshotDifferential chains patched views down a random
// insert/delete schedule and checks each against a fresh rebuild (and the
// graph itself) — the patched view must be observationally identical.
func TestPatchFlatSnapshotDifferential(t *testing.T) {
	r := xhash.NewRNG(72)
	g := NewGraph(params()).InsertEdges(MakeUndirected(randomEdges(r, 3000, 600)))
	patched := BuildFlatSnapshot(g)
	checkFlatAgainstGraph(t, patched, g, "initial build")
	for step := 0; step < 15; step++ {
		switch step % 4 {
		case 3:
			// Delete-heavy batch, sometimes emptying vertices (shrink path).
			g = g.DeleteEdges(MakeUndirected(randomEdges(r, 400, 600)))
		case 2:
			// Growing batch: extends the id space past the previous order.
			g = g.InsertEdges(MakeUndirected(randomEdges(r, 100, 600+step*40)))
		default:
			g = g.InsertEdges(MakeUndirected(randomEdges(r, 200, 600)))
		}
		patched = PatchFlatSnapshot(patched, g)
		checkFlatAgainstGraph(t, patched, g, "patched chain")
		rebuilt := BuildFlatSnapshot(g)
		if patched.MemoryBytes()+patched.SharedMemoryBytes() < rebuilt.MemoryBytes() {
			t.Fatalf("step %d: owned+shared (%d+%d) below full footprint %d",
				step, patched.MemoryBytes(), patched.SharedMemoryBytes(), rebuilt.MemoryBytes())
		}
	}
}

// TestPatchFlatSnapshotShrink exercises a shrinking id space: deleting the
// highest vertices' edges must drop Order and never read stale slots.
func TestPatchFlatSnapshotShrink(t *testing.T) {
	g := NewGraph(params()).InsertEdges(MakeUndirected([]Edge{{1, 2}, {3, 4000}, {5, 6}}))
	fs := BuildFlatSnapshot(g)
	g2 := g.DeleteEdgesGC(MakeUndirected([]Edge{{3, 4000}}))
	if g2.Order() >= g.Order() {
		t.Fatalf("setup: order did not shrink (%d -> %d)", g.Order(), g2.Order())
	}
	p := PatchFlatSnapshot(fs, g2)
	checkFlatAgainstGraph(t, p, g2, "shrunk")
	// And growing again from the shrunk patched view.
	g3 := g2.InsertEdges(MakeUndirected([]Edge{{7, 5000}}))
	checkFlatAgainstGraph(t, PatchFlatSnapshot(p, g3), g3, "regrown")
}

// TestPatchFlatSnapshotIdentity pins the trivial cases: nil prev falls back
// to a full build, an already-current prev is returned as-is.
func TestPatchFlatSnapshotIdentity(t *testing.T) {
	g := NewGraph(params()).InsertEdges(MakeUndirected([]Edge{{1, 2}, {2, 3}}))
	fs := PatchFlatSnapshot(nil, g)
	checkFlatAgainstGraph(t, fs, g, "nil prev")
	if again := PatchFlatSnapshot(fs, g); again != fs {
		t.Fatal("patching a current view did not return it unchanged")
	}
}

// TestPatchFlatSnapshotSharing verifies the copy-on-write accounting: a
// small batch against a large graph must leave most pages aliased (owned
// bytes far below a full build) while a fresh build owns everything.
func TestPatchFlatSnapshotSharing(t *testing.T) {
	r := xhash.NewRNG(73)
	g := NewGraph(params()).InsertEdges(MakeUndirected(randomEdges(r, 40_000, 30_000)))
	built := BuildFlatSnapshot(g)
	if built.SharedMemoryBytes() != 0 {
		t.Fatalf("fresh build reports %d shared bytes", built.SharedMemoryBytes())
	}
	// One tiny batch: a handful of touched pages.
	g2 := g.InsertEdges(MakeUndirected([]Edge{{10, 11}, {500, 501}}))
	p := PatchFlatSnapshot(built, g2)
	checkFlatAgainstGraph(t, p, g2, "small patch")
	if p.SharedMemoryBytes() == 0 {
		t.Fatal("patched view aliases no pages")
	}
	rebuilt := BuildFlatSnapshot(g2)
	// Owned bytes = page table + degrees + touched pages only; require the
	// slot-page share to be well under a full build's.
	if p.MemoryBytes() >= rebuilt.MemoryBytes() {
		t.Fatalf("patched view owns %d bytes, full build %d — no sharing",
			p.MemoryBytes(), rebuilt.MemoryBytes())
	}
}

// TestPatchFlatWeightedSnapshot covers the weighted patch path, including
// weight-only changes (DiffChanged at both levels).
func TestPatchFlatWeightedSnapshot(t *testing.T) {
	r := xhash.NewRNG(74)
	g := NewWeightedGraph().InsertEdges(randomWeightedBatch(r, 4000, 500))
	patched := BuildFlatWeightedSnapshot(g)
	for step := 0; step < 10; step++ {
		if step%3 == 2 {
			g = g.DeleteEdges(randomWeightedBatch(r, 300, 500))
		} else {
			// Inserting over existing ids re-weights existing edges.
			g = g.InsertEdges(randomWeightedBatch(r, 250, 500))
		}
		patched = PatchFlatWeightedSnapshot(patched, g)
		if patched.Order() != g.Order() || patched.NumEdges() != g.NumEdges() {
			t.Fatalf("step %d: header mismatch", step)
		}
		for u := uint32(0); int(u) < g.Order(); u++ {
			if patched.Degree(u) != g.Degree(u) {
				t.Fatalf("step %d: degree mismatch at %d", step, u)
			}
			type nbr struct {
				v uint32
				w float32
			}
			var a, b []nbr
			g.ForEachNeighborW(u, func(v uint32, w float32) bool { a = append(a, nbr{v, w}); return true })
			patched.ForEachNeighborW(u, func(v uint32, w float32) bool { b = append(b, nbr{v, w}); return true })
			if len(a) != len(b) {
				t.Fatalf("step %d: neighbor count mismatch at %d", step, u)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("step %d: weighted neighbor mismatch at %d: %v vs %v", step, u, a[i], b[i])
				}
			}
		}
	}
}
