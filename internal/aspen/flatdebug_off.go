//go:build !aspendebug

package aspen

// flatDebug gates the stale-flat-view assertions. Off in release builds:
// MustCurrent compiles to nothing.
const flatDebug = false
