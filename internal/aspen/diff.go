package aspen

import (
	"repro/internal/ctree"
)

// DiffKind classifies a vertex (or edge) change between two versions; the
// kinds are ctree's, which are pftree's underneath.
type DiffKind = ctree.DiffKind

// Re-exported kinds for aspen-level callers.
const (
	DiffAdded   = ctree.DiffAdded
	DiffRemoved = ctree.DiffRemoved
	DiffChanged = ctree.DiffChanged
)

// VertexDelta describes how one vertex's adjacency changed between two
// versions: the vertex appeared (DiffAdded, Old is the zero tree),
// disappeared (DiffRemoved, New is the zero tree), or kept its slot while
// its edge tree changed (DiffChanged). Both trees are immutable snapshots;
// Edges refines the delta to individual edge updates on demand.
type VertexDelta[V ctree.Value] struct {
	ID   uint32
	Kind DiffKind
	Old  ctree.Tree[V]
	New  ctree.Tree[V]
}

// Edges emits this vertex's per-edge delta — every neighbor added, removed
// or (for weighted graphs) re-weighted — in ascending neighbor order, via
// ctree.Diff. O(d·b + log deg) for d changed edges.
func (d VertexDelta[V]) Edges(emit func(e uint32, kind ctree.DiffKind, oldV, newV V) bool) bool {
	return ctree.Diff(d.Old, d.New, emit)
}

// diffVersionsCore walks two vertex trees, pruning pointer-shared subtrees
// and, at matching vertices, comparing edge trees by representation
// (EqualRep) — O(1) per untouched vertex, so the walk costs O(d log(n/d+1))
// for d touched vertices between versions of one lineage.
func diffVersionsCore[V ctree.Value](ops *vopsT[V], old, cur *vnode[V], f func(VertexDelta[V]) bool) bool {
	return ops.Diff(old, cur,
		func(a, b ctree.Tree[V]) bool { return a.EqualRep(b) },
		func(u uint32, kind DiffKind, ot, nt ctree.Tree[V]) bool {
			return f(VertexDelta[V]{ID: u, Kind: kind, Old: ot, New: nt})
		})
}

// DiffVersions applies f to every vertex whose adjacency differs between
// two versions of an unweighted graph, in ascending vertex order; f may
// return false to stop, and DiffVersions reports whether the walk ran to
// completion. Because versions of one lineage share structure, the cost is
// proportional to the number of touched vertices (plus a logarithmic
// alignment term), not the graph size — the primitive behind flat-view
// patching and incremental kernel maintenance.
func DiffVersions(old, cur Graph, f func(VertexDelta[struct{}]) bool) bool {
	return diffVersionsCore(vops, old.vt, cur.vt, f)
}

// DiffVersionsWeighted is the weighted analogue of DiffVersions; weight
// updates on an existing edge surface as DiffChanged at both levels.
func DiffVersionsWeighted(old, cur WeightedGraph, f func(VertexDelta[float32]) bool) bool {
	return diffVersionsCore(wvops, old.vt, cur.vt, f)
}
