package aspen

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/ctree"
	"repro/internal/graphio"
	"repro/internal/parallel"
	"repro/internal/pftree"
)

// This file converts graphs to and from graphio.Snapshot, the checkpoint
// format of the durability subsystem. The export walks the immutable
// vertex-tree (so it can run on a pinned snapshot concurrently with the
// writer), and the import rebuilds the trees bottom-up with the same
// parallel construction FromAdjacency uses. Because batch application is
// deterministic, a graph imported from a checkpoint and then replayed
// through the same WAL suffix reconverges with the pre-crash state.

// Snapshot flattens g into its serializable form. Vertex ids are preserved
// exactly — gaps and isolated vertices survive the round trip.
func (g Graph) Snapshot() *graphio.Snapshot {
	verts, trees, offs := flattenVertexTree(vops, g.vt)
	s := &graphio.Snapshot{Verts: verts, Offs: offs, Edges: make([]uint32, offs[len(offs)-1])}
	parallel.ForGrain(len(trees), 16, func(i int) {
		out := s.Edges[offs[i]:offs[i+1]]
		k := 0
		trees[i].ForEach(func(v uint32) bool {
			out[k] = v
			k++
			return true
		})
	})
	return s
}

// Snapshot flattens g, interleaving each edge's float32 weight into the
// payload section (Width = 4, little-endian).
func (g WeightedGraph) Snapshot() *graphio.Snapshot {
	verts, trees, offs := flattenVertexTree(wvops, g.vt)
	m := offs[len(offs)-1]
	s := &graphio.Snapshot{
		Width:   4,
		Verts:   verts,
		Offs:    offs,
		Edges:   make([]uint32, m),
		Payload: make([]byte, 4*m),
	}
	parallel.ForGrain(len(trees), 16, func(i int) {
		k := offs[i]
		trees[i].ForEachKV(func(v uint32, w float32) bool {
			s.Edges[k] = v
			binary.LittleEndian.PutUint32(s.Payload[4*k:], math.Float32bits(w))
			k++
			return true
		})
	})
	return s
}

// flattenVertexTree walks the vertex tree once, collecting ids, edge trees
// and the exclusive prefix-sum of degrees.
func flattenVertexTree[V ctree.Value](ops *vopsT[V], vt *vnode[V]) ([]uint32, []ctree.Tree[V], []uint64) {
	n := vt.Size()
	verts := make([]uint32, 0, n)
	trees := make([]ctree.Tree[V], 0, n)
	offs := make([]uint64, 1, n+1)
	ops.ForEach(vt, func(u uint32, et ctree.Tree[V]) bool {
		verts = append(verts, u)
		trees = append(trees, et)
		offs = append(offs, offs[len(offs)-1]+et.Size())
		return true
	})
	return verts, trees, offs
}

// GraphFromSnapshot rebuilds an unweighted graph from its snapshot form.
// The snapshot's structure was already validated by graphio.ReadSnapshot;
// the per-vertex neighbor order is checked here (building a C-tree from an
// unsorted list would corrupt it silently), so a damaged-but-checksum-valid
// file still cannot produce an invalid graph.
func GraphFromSnapshot(p ctree.Params, s *graphio.Snapshot) (Graph, error) {
	if s.Width != 0 {
		return Graph{}, fmt.Errorf("aspen: snapshot has payload width %d, want 0: %w", s.Width, graphio.ErrCorrupt)
	}
	if err := checkSnapshotOrder(s); err != nil {
		return Graph{}, err
	}
	entries := make([]pftree.Entry[uint32, ctree.Set], len(s.Verts))
	parallel.ForGrain(len(s.Verts), 16, func(i int) {
		entries[i] = pftree.Entry[uint32, ctree.Set]{
			Key: s.Verts[i],
			Val: ctree.Build(p, s.Edges[s.Offs[i]:s.Offs[i+1]]),
		}
	})
	return Graph{p: p, vt: vops.BuildSorted(entries)}, nil
}

// WeightedGraphFromSnapshot rebuilds a weighted graph from its snapshot
// form (payload width must be 4: one little-endian float32 per edge).
func WeightedGraphFromSnapshot(p ctree.Params, s *graphio.Snapshot) (WeightedGraph, error) {
	if s.Width != 4 {
		return WeightedGraph{}, fmt.Errorf("aspen: snapshot has payload width %d, want 4: %w", s.Width, graphio.ErrCorrupt)
	}
	if err := checkSnapshotOrder(s); err != nil {
		return WeightedGraph{}, err
	}
	entries := make([]pftree.Entry[uint32, ctree.Tree[float32]], len(s.Verts))
	parallel.ForGrain(len(s.Verts), 16, func(i int) {
		lo, hi := s.Offs[i], s.Offs[i+1]
		ws := make([]float32, hi-lo)
		for j := range ws {
			ws[j] = math.Float32frombits(binary.LittleEndian.Uint32(s.Payload[4*(lo+uint64(j)):]))
		}
		entries[i] = pftree.Entry[uint32, ctree.Tree[float32]]{
			Key: s.Verts[i],
			Val: ctree.BuildKV(p, s.Edges[lo:hi], ws),
		}
	})
	return WeightedGraph{p: p, vt: wvops.BuildSorted(entries)}, nil
}

// checkSnapshotOrder verifies every neighbor list is strictly increasing.
func checkSnapshotOrder(s *graphio.Snapshot) error {
	var bad atomic.Bool
	parallel.ForGrain(len(s.Verts), 16, func(i int) {
		nbrs := s.Edges[s.Offs[i]:s.Offs[i+1]]
		for j := 1; j < len(nbrs); j++ {
			if nbrs[j-1] >= nbrs[j] {
				bad.Store(true)
				return
			}
		}
	})
	if bad.Load() {
		return fmt.Errorf("aspen: snapshot neighbor lists not strictly increasing: %w", graphio.ErrCorrupt)
	}
	return nil
}

// Equal reports whether g and o are the same logical graph: the same vertex
// set and, per vertex, the same neighbor set. Vertices whose edge trees are
// pointer-identical across the two graphs (the common case when one version
// derives from the other) compare in O(1) via EqualRep; only genuinely
// divergent trees are walked. Needed by crash-recovery verification, where
// the recovered graph was rebuilt from disk and shares no pointers with the
// original.
func (g Graph) Equal(o Graph) bool {
	if g.vt == o.vt {
		return true
	}
	if g.NumVertices() != o.NumVertices() || g.NumEdges() != o.NumEdges() {
		return false
	}
	equal := true
	g.ForEachVertex(func(u uint32, et ctree.Set) bool {
		ot, ok := vops.Find(o.vt, u)
		if !ok || !setsEqual(et, ot) {
			equal = false
			return false
		}
		return true
	})
	return equal
}

func setsEqual(a, b ctree.Set) bool {
	if a.EqualRep(b) {
		return true
	}
	if a.Size() != b.Size() {
		return false
	}
	nbrs := make([]uint32, 0, a.Size())
	a.ForEach(func(v uint32) bool {
		nbrs = append(nbrs, v)
		return true
	})
	i, same := 0, true
	b.ForEach(func(v uint32) bool {
		if nbrs[i] != v {
			same = false
			return false
		}
		i++
		return true
	})
	return same
}

// Equal reports whether g and o are the same logical weighted graph,
// comparing neighbor sets and exact float32 weights. Same EqualRep fast
// path as the unweighted form.
func (g WeightedGraph) Equal(o WeightedGraph) bool {
	if g.vt == o.vt {
		return true
	}
	if g.NumVertices() != o.NumVertices() || g.NumEdges() != o.NumEdges() {
		return false
	}
	equal := true
	g.ForEachVertexW(func(u uint32, et ctree.Tree[float32]) bool {
		ot, ok := wvops.Find(o.vt, u)
		if !ok || !weightedEqual(et, ot) {
			equal = false
			return false
		}
		return true
	})
	return equal
}

func weightedEqual(a, b ctree.Tree[float32]) bool {
	if a.EqualRep(b) {
		return true
	}
	if a.Size() != b.Size() {
		return false
	}
	type kv struct {
		v uint32
		w float32
	}
	kvs := make([]kv, 0, a.Size())
	a.ForEachKV(func(v uint32, w float32) bool {
		kvs = append(kvs, kv{v, w})
		return true
	})
	i, same := 0, true
	b.ForEachKV(func(v uint32, w float32) bool {
		if kvs[i].v != v || math.Float32bits(kvs[i].w) != math.Float32bits(w) {
			same = false
			return false
		}
		i++
		return true
	})
	return same
}
