package aspen

import (
	"repro/internal/parallel"
	"repro/internal/pftree"
)

// WeightedGraph extends Aspen with real-valued edge weights — functionality
// the paper explicitly defers to future work (§6: "Aspen currently does not
// support weighted edges"). Edge trees here are purely-functional
// (uncompressed) trees mapping neighbor id to weight; the vertex-tree is
// augmented with the edge count exactly as in the unweighted graph, so the
// versioned-graph machinery and the algorithm interface carry over.
type WeightedGraph struct {
	vt *pftree.Node[uint32, wedgeTree, uint64]
}

// WeightedEdge is a directed weighted edge update.
type WeightedEdge struct {
	Src, Dst uint32
	Weight   float32
}

// wedgeTree is one vertex's weighted adjacency: dst -> weight, augmented
// with the subtree edge count (trivially the size, kept for symmetry).
type wedgeTree = *pftree.Node[uint32, float32, uint64]

func cmpU32(a, b uint32) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

var weops = &pftree.Ops[uint32, float32, uint64]{
	Cmp: cmpU32,
	Aug: pftree.Augment[uint32, float32, uint64]{
		Zero:      0,
		FromEntry: func(uint32, float32) uint64 { return 1 },
		Combine:   func(a, b uint64) uint64 { return a + b },
	},
}

var wvops = &pftree.Ops[uint32, wedgeTree, uint64]{
	Cmp: cmpU32,
	Aug: pftree.Augment[uint32, wedgeTree, uint64]{
		Zero:      0,
		FromEntry: func(_ uint32, et wedgeTree) uint64 { return uint64(et.Size()) },
		Combine:   func(a, b uint64) uint64 { return a + b },
	},
}

// NewWeightedGraph returns an empty weighted graph.
func NewWeightedGraph() WeightedGraph { return WeightedGraph{} }

// NumVertices returns the number of vertices in O(1).
func (g WeightedGraph) NumVertices() int { return g.vt.Size() }

// NumEdges returns the number of directed edges in O(1) via augmentation.
func (g WeightedGraph) NumEdges() uint64 { return wvops.AugOf(g.vt) }

// Order returns the vertex-id space size (max id + 1).
func (g WeightedGraph) Order() int {
	last := wvops.Last(g.vt)
	if last == nil {
		return 0
	}
	return int(last.Key()) + 1
}

// Degree returns u's degree.
func (g WeightedGraph) Degree(u uint32) int {
	et, ok := wvops.Find(g.vt, u)
	if !ok {
		return 0
	}
	return et.Size()
}

// Weight returns the weight of edge (u, v).
func (g WeightedGraph) Weight(u, v uint32) (float32, bool) {
	et, ok := wvops.Find(g.vt, u)
	if !ok {
		return 0, false
	}
	return weops.Find(et, v)
}

// ForEachNeighbor applies f to u's neighbors in increasing order (weights
// dropped), satisfying the ligra.Graph interface.
func (g WeightedGraph) ForEachNeighbor(u uint32, f func(v uint32) bool) {
	et, ok := wvops.Find(g.vt, u)
	if !ok {
		return
	}
	weops.ForEach(et, func(v uint32, _ float32) bool { return f(v) })
}

// ForEachNeighborWeight applies f to (neighbor, weight) pairs in order.
func (g WeightedGraph) ForEachNeighborWeight(u uint32, f func(v uint32, w float32) bool) {
	et, ok := wvops.Find(g.vt, u)
	if !ok {
		return
	}
	weops.ForEach(et, f)
}

// InsertEdges adds a batch of weighted directed edges; duplicate updates to
// the same edge keep the last weight in batch order, and updates to existing
// edges overwrite their weight (the paper's interface allows weight updates
// through the same insertion path, §5).
func (g WeightedGraph) InsertEdges(edges []WeightedEdge) WeightedGraph {
	if len(edges) == 0 {
		return g
	}
	// Group by source; last write per (src, dst) wins.
	bySrc := map[uint32]map[uint32]float32{}
	for _, e := range edges {
		if bySrc[e.Src] == nil {
			bySrc[e.Src] = map[uint32]float32{}
		}
		bySrc[e.Src][e.Dst] = e.Weight
	}
	srcs := make([]uint32, 0, len(bySrc))
	for u := range bySrc {
		srcs = append(srcs, u)
	}
	parallel.SortUint32(srcs)
	entries := make([]pftree.Entry[uint32, wedgeTree], len(srcs))
	parallel.ForGrain(len(srcs), 16, func(i int) {
		u := srcs[i]
		dsts := make([]uint32, 0, len(bySrc[u]))
		for v := range bySrc[u] {
			dsts = append(dsts, v)
		}
		parallel.SortUint32(dsts)
		sub := make([]pftree.Entry[uint32, float32], len(dsts))
		for j, v := range dsts {
			sub[j] = pftree.Entry[uint32, float32]{Key: v, Val: bySrc[u][v]}
		}
		entries[i] = pftree.Entry[uint32, wedgeTree]{Key: u, Val: weops.BuildSorted(sub)}
	})
	root := wvops.MultiInsert(g.vt, entries, func(old, new wedgeTree) wedgeTree {
		return weops.Union(old, new, nil) // new weights win
	})
	return WeightedGraph{vt: root}
}

// DeleteEdges removes a batch of directed edges (weights ignored).
func (g WeightedGraph) DeleteEdges(edges []WeightedEdge) WeightedGraph {
	bySrc := map[uint32][]uint32{}
	for _, e := range edges {
		bySrc[e.Src] = append(bySrc[e.Src], e.Dst)
	}
	root := g.vt
	for u, dsts := range bySrc {
		et, ok := wvops.Find(root, u)
		if !ok {
			continue
		}
		parallel.SortUint32(dsts)
		dsts = parallel.DedupSortedUint32(dsts)
		et2 := weops.MultiDelete(et, dsts)
		root = wvops.Insert(root, u, et2, nil)
	}
	return WeightedGraph{vt: root}
}

// TotalWeight sums all edge weights (an example of an associative
// aggregation the paper notes could be maintained by augmentation).
func (g WeightedGraph) TotalWeight() float64 {
	var total float64
	wvops.ForEach(g.vt, func(_ uint32, et wedgeTree) bool {
		weops.ForEach(et, func(_ uint32, w float32) bool {
			total += float64(w)
			return true
		})
		return true
	})
	return total
}
