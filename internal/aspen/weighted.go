package aspen

import (
	"repro/internal/ctree"
	"repro/internal/parallel"
)

// WeightedGraph extends Aspen with real-valued edge weights — functionality
// the paper explicitly defers to future work (§6: "Aspen currently does not
// support weighted edges"). Edge trees are compressed C-trees over a
// float32 payload (ctree.Tree[float32]): neighbor ids are difference-
// encoded exactly as in the unweighted graph, with each id's weight stored
// as four fixed bytes interleaved into the chunk, so weighted workloads
// keep the space and locality wins of the compressed format. Batch updates
// share the radix-sorted fused vertex-tree pass of the unweighted graph
// (batch.go); duplicate updates resolve last-writer-wins in batch order.
type WeightedGraph struct {
	p  ctree.Params
	vt *vnode[float32]
}

// WeightedEdge is a directed weighted edge update.
type WeightedEdge struct {
	Src, Dst uint32
	Weight   float32
}

// NewWeightedGraph returns an empty weighted graph with the paper's default
// compression parameters.
func NewWeightedGraph() WeightedGraph { return NewWeightedGraphWith(ctree.DefaultParams()) }

// NewWeightedGraphWith returns an empty weighted graph whose edge trees use
// params p.
func NewWeightedGraphWith(p ctree.Params) WeightedGraph { return WeightedGraph{p: p} }

// Params returns the edge-tree parameters of g.
func (g WeightedGraph) Params() ctree.Params { return g.p }

// NumVertices returns the number of vertices in O(1).
func (g WeightedGraph) NumVertices() int { return g.vt.Size() }

// NumEdges returns the number of directed edges in O(1) via augmentation.
func (g WeightedGraph) NumEdges() uint64 { return wvops.AugOf(g.vt) }

// Order returns the vertex-id space size (max id + 1).
func (g WeightedGraph) Order() int {
	last := wvops.Last(g.vt)
	if last == nil {
		return 0
	}
	return int(last.Key()) + 1
}

// HasVertex reports whether u is a vertex of g.
func (g WeightedGraph) HasVertex(u uint32) bool {
	_, ok := wvops.Find(g.vt, u)
	return ok
}

// EdgeTree returns u's weighted edge C-tree. O(log n).
func (g WeightedGraph) EdgeTree(u uint32) (ctree.Tree[float32], bool) {
	return wvops.Find(g.vt, u)
}

// Degree returns u's degree.
func (g WeightedGraph) Degree(u uint32) int {
	et, ok := wvops.Find(g.vt, u)
	if !ok {
		return 0
	}
	return int(et.Size())
}

// Weight returns the weight of edge (u, v).
func (g WeightedGraph) Weight(u, v uint32) (float32, bool) {
	et, ok := wvops.Find(g.vt, u)
	if !ok {
		return 0, false
	}
	return et.Find(v)
}

// ForEachNeighbor applies f to u's neighbors in increasing order (weights
// dropped), satisfying the ligra.Graph interface.
func (g WeightedGraph) ForEachNeighbor(u uint32, f func(v uint32) bool) {
	if et, ok := wvops.Find(g.vt, u); ok {
		et.ForEach(f)
	}
}

// ForEachNeighborPar applies f to u's neighbors with edge-tree parallelism
// (unordered).
func (g WeightedGraph) ForEachNeighborPar(u uint32, f func(v uint32)) {
	if et, ok := wvops.Find(g.vt, u); ok {
		et.ForEachPar(f)
	}
}

// ForEachNeighborW applies f to (neighbor, weight) pairs in increasing
// neighbor order until f returns false — the ligra.WeightedGraph
// capability.
func (g WeightedGraph) ForEachNeighborW(u uint32, f func(v uint32, w float32) bool) {
	if et, ok := wvops.Find(g.vt, u); ok {
		et.ForEachKV(f)
	}
}

// ForEachNeighborWeight is the historical name of ForEachNeighborW.
func (g WeightedGraph) ForEachNeighborWeight(u uint32, f func(v uint32, w float32) bool) {
	g.ForEachNeighborW(u, f)
}

// sortWeightedEdgeBatch packs, stably sorts and dedupes a weighted batch;
// for duplicate (src, dst) pairs the last weight in batch order wins.
func sortWeightedEdgeBatch(edges []WeightedEdge) ([]uint64, []float32) {
	packed := make([]uint64, len(edges))
	ws := make([]float32, len(edges))
	parallel.For(len(edges), func(i int) {
		packed[i] = uint64(edges[i].Src)<<32 | uint64(edges[i].Dst)
		ws[i] = edges[i].Weight
	})
	parallel.RadixSortUint64Pairs(packed, ws)
	return parallel.DedupSortedUint64PairsLast(packed, ws)
}

// InsertEdges adds a batch of weighted directed edges; duplicate updates to
// the same edge keep the last weight in batch order, and updates to
// existing edges overwrite their weight (the paper's interface allows
// weight updates through the same insertion path, §5). Same fused
// single-pass batch algorithm as the unweighted graph.
func (g WeightedGraph) InsertEdges(edges []WeightedEdge) WeightedGraph {
	if len(edges) == 0 {
		return g
	}
	packed, ws := sortWeightedEdgeBatch(edges)
	return WeightedGraph{p: g.p, vt: insertEdgesCore(wvops, g.p, g.vt, packed, ws, nil)}
}

// InsertEdgesWith is InsertEdges with an explicit weight-merge policy for
// edges that already exist: the stored weight becomes merge(old, new). A
// nil merge overwrites (last-writer-wins).
func (g WeightedGraph) InsertEdgesWith(edges []WeightedEdge, merge func(old, new float32) float32) WeightedGraph {
	if len(edges) == 0 {
		return g
	}
	packed, ws := sortWeightedEdgeBatch(edges)
	return WeightedGraph{p: g.p, vt: insertEdgesCore(wvops, g.p, g.vt, packed, ws, merge)}
}

// DeleteEdges removes a batch of directed edges (weights ignored); vertices
// are kept even at degree zero.
func (g WeightedGraph) DeleteEdges(edges []WeightedEdge) WeightedGraph {
	if len(edges) == 0 {
		return g
	}
	packed := make([]uint64, len(edges))
	parallel.For(len(edges), func(i int) {
		packed[i] = uint64(edges[i].Src)<<32 | uint64(edges[i].Dst)
	})
	parallel.RadixSortUint64(packed)
	packed = parallel.DedupSortedUint64(packed)
	return WeightedGraph{p: g.p, vt: deleteEdgesCore(wvops, g.p, g.vt, packed, false)}
}

// CollectIsolated returns a graph without its degree-zero vertices.
func (g WeightedGraph) CollectIsolated() WeightedGraph {
	return WeightedGraph{p: g.p, vt: collectIsolatedCore(wvops, g.vt)}
}

// ForEachVertexW applies f to every (vertex, weighted edge-tree) pair in id
// order until f returns false.
func (g WeightedGraph) ForEachVertexW(f func(u uint32, et ctree.Tree[float32]) bool) {
	wvops.ForEach(g.vt, f)
}

// TotalWeight sums all edge weights (an example of an associative
// aggregation the paper notes could be maintained by augmentation).
func (g WeightedGraph) TotalWeight() float64 {
	var total float64
	wvops.ForEach(g.vt, func(_ uint32, et ctree.Tree[float32]) bool {
		et.ForEachKV(func(_ uint32, w float32) bool {
			total += float64(w)
			return true
		})
		return true
	})
	return total
}

// Stats walks the graph and returns its memory shape (chunk bytes include
// the interleaved weight bytes).
func (g WeightedGraph) Stats() Stats {
	s := Stats{VertexNodes: g.vt.Size()}
	wvops.ForEach(g.vt, func(_ uint32, et ctree.Tree[float32]) bool {
		s.Edge.Add(et.Stats())
		return true
	})
	return s
}

// MakeUndirectedWeighted duplicates each weighted edge in both directions
// with the same weight (symmetric-graph batch form).
func MakeUndirectedWeighted(edges []WeightedEdge) []WeightedEdge {
	out := make([]WeightedEdge, 0, 2*len(edges))
	for _, e := range edges {
		out = append(out, e, WeightedEdge{Src: e.Dst, Dst: e.Src, Weight: e.Weight})
	}
	return out
}
