package aspen

import (
	"bytes"
	"sync/atomic"
	"testing"

	"repro/internal/graphio"
	"repro/internal/xhash"
)

func TestGraphSnapshotRoundTrip(t *testing.T) {
	r := xhash.NewRNG(23)
	g := NewGraph(params()).InsertEdges(MakeUndirected(randomEdges(r, 600, 90)))
	// Sparse ids and an isolated vertex must survive the round trip.
	g = g.InsertEdges([]Edge{{Src: 1 << 20, Dst: 7}}).InsertVertices([]uint32{500000})

	s := g.Snapshot()
	var buf bytes.Buffer
	if err := graphio.WriteSnapshot(&buf, s); err != nil {
		t.Fatal(err)
	}
	s2, err := graphio.ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := GraphFromSnapshot(params(), s2)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(g2) {
		t.Fatal("graph not equal after snapshot round trip")
	}
	if !g2.HasVertex(500000) || g2.Degree(500000) != 0 {
		t.Fatal("isolated vertex lost")
	}
	if !g2.HasEdge(1<<20, 7) {
		t.Fatal("sparse-id edge lost")
	}
}

func TestWeightedSnapshotRoundTrip(t *testing.T) {
	r := xhash.NewRNG(29)
	var edges []WeightedEdge
	for i := 0; i < 500; i++ {
		edges = append(edges, WeightedEdge{
			Src:    uint32(r.Next() % 80),
			Dst:    uint32(r.Next() % 80),
			Weight: float32(r.Next()%1000) / 7,
		})
	}
	g := NewWeightedGraph().InsertEdges(MakeUndirectedWeighted(edges))

	s := g.Snapshot()
	var buf bytes.Buffer
	if err := graphio.WriteSnapshot(&buf, s); err != nil {
		t.Fatal(err)
	}
	s2, err := graphio.ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := WeightedGraphFromSnapshot(g.Params(), s2)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(g2) {
		t.Fatal("weighted graph not equal after snapshot round trip")
	}
}

func TestSnapshotWidthMismatch(t *testing.T) {
	g := NewGraph(params()).InsertEdges([]Edge{{Src: 0, Dst: 1}})
	if _, err := WeightedGraphFromSnapshot(g.Params(), g.Snapshot()); err == nil {
		t.Fatal("unweighted snapshot accepted as weighted")
	}
	w := NewWeightedGraph().InsertEdges([]WeightedEdge{{Src: 0, Dst: 1, Weight: 2}})
	if _, err := GraphFromSnapshot(w.Params(), w.Snapshot()); err == nil {
		t.Fatal("weighted snapshot accepted as unweighted")
	}
}

func TestGraphEqual(t *testing.T) {
	r := xhash.NewRNG(31)
	base := randomEdges(r, 300, 50)
	g1 := NewGraph(params()).InsertEdges(base)
	g2 := NewGraph(params()).InsertEdges(base)
	if !g1.Equal(g2) {
		t.Fatal("independently built equal graphs compare unequal")
	}
	if !g1.Equal(g1) {
		t.Fatal("self-compare failed")
	}
	g3 := g1.InsertEdges([]Edge{{Src: 200, Dst: 201}})
	if g1.Equal(g3) {
		t.Fatal("different graphs compare equal")
	}
	// Same edge count, different edges.
	g4 := g1.DeleteEdges(base[:1]).InsertEdges([]Edge{{Src: 210, Dst: 211}})
	if g4.NumEdges() == g1.NumEdges() && g1.Equal(g4) {
		t.Fatal("different graphs with equal counts compare equal")
	}
	// Re-inserting an existing edge yields a logically equal graph that
	// shares almost every edge tree — the EqualRep fast path.
	g5 := g1.InsertEdges(base[:1])
	if !g1.Equal(g5) {
		t.Fatal("re-insert of existing edge changed the graph")
	}
}

func TestWeightedEqualWeightSensitive(t *testing.T) {
	e := []WeightedEdge{{Src: 0, Dst: 1, Weight: 1.5}, {Src: 1, Dst: 2, Weight: 2.5}}
	g1 := NewWeightedGraph().InsertEdges(e)
	g2 := NewWeightedGraph().InsertEdges(e)
	if !g1.Equal(g2) {
		t.Fatal("equal weighted graphs compare unequal")
	}
	g3 := g1.InsertEdges([]WeightedEdge{{Src: 0, Dst: 1, Weight: 9}})
	if g1.Equal(g3) {
		t.Fatal("weight change not detected")
	}
}

// TestHistoryTrimRetention pins retained versions through the epoch
// refcounts: a trimmed version's pin is released exactly once (the retire
// hook fires once per superseded version and never for survivors), and a
// version pinned by an outside reader stays readable through a trim.
func TestHistoryTrimRetention(t *testing.T) {
	h := NewHistory(NewGraph(params()))
	retired := make(map[uint64]*atomic.Int64)
	for s := uint64(1); s <= 6; s++ {
		retired[s] = &atomic.Int64{}
	}
	h.Versioned().SetRetireHook(func(stamp uint64) {
		if c, ok := retired[stamp]; ok {
			c.Add(1)
		}
	})
	var stamps []uint64
	for i := uint32(0); i < 6; i++ {
		stamps = append(stamps, h.InsertEdges([]Edge{{Src: i, Dst: i + 1}}))
	}
	// All superseded versions are still pinned by the history: none retired.
	for s, c := range retired {
		if s != stamps[5] && c.Load() != 0 {
			t.Fatalf("stamp %d retired while retained", s)
		}
	}

	// An outside reader pins the pre-trim current version.
	pinned := h.Versioned().Acquire()

	dropped := h.TrimBefore(stamps[3])
	if dropped != 4 { // stamp 0 plus stamps[0..2]
		t.Fatalf("dropped %d versions, want 4", dropped)
	}
	if h.Len() != 3 {
		t.Fatalf("retained %d versions, want 3", h.Len())
	}
	for _, s := range stamps[:3] {
		if got := retired[s].Load(); got != 1 {
			t.Fatalf("stamp %d retire count = %d, want 1", s, got)
		}
		if _, ok := h.AsOf(s); ok {
			t.Fatalf("stamp %d still readable after trim", s)
		}
	}
	// Survivors and the current version are untouched.
	for _, s := range stamps[3:] {
		if retired[s].Load() != 0 {
			t.Fatalf("stamp %d retired but should be retained", s)
		}
		if _, ok := h.AsOf(s); !ok {
			t.Fatalf("stamp %d unreadable after trim", s)
		}
	}

	// The outside pin kept its version readable independent of the trim.
	if pinned.Graph.NumEdges() != 6 {
		t.Fatalf("pinned version edges = %d, want 6", pinned.Graph.NumEdges())
	}
	h.Versioned().Release(pinned)

	// Trimming again with the same bound is a no-op: no double release.
	if n := h.TrimBefore(stamps[3]); n != 0 {
		t.Fatalf("second trim dropped %d", n)
	}
	for _, s := range stamps[:3] {
		if got := retired[s].Load(); got != 1 {
			t.Fatalf("stamp %d retire count = %d after re-trim, want 1", s, got)
		}
	}

	// Trimming past the end keeps the newest version.
	if n := h.TrimBefore(stamps[5] + 100); n != 2 {
		t.Fatalf("trim-all dropped %d, want 2", n)
	}
	if h.Len() != 1 || h.Latest().NumEdges() != 6 {
		t.Fatal("latest version lost by trim-all")
	}
}
