package aspen

import (
	"sync"
	"sync/atomic"
)

// Versioned maintains an evolving immutable value (a graph snapshot) as a
// sequence of versions, implementing the acquire / set / release interface
// of §6 generically: any purely-functional snapshot type works, and the
// repository instantiates it for both Graph and WeightedGraph. Any number
// of readers may acquire versions concurrently with a single writer; no
// reader or writer ever blocks another reader. Writers are serialized by an
// internal mutex, and every update becomes visible atomically, giving
// strict serializability: queries observe exactly the prefix of updates
// published before their acquire.
//
// Version lifetime follows the paper's epoch discipline: each version
// carries a reference count that starts at one (the store's own reference,
// dropped when the version is superseded) and is incremented per acquire.
// When the count of a superseded version drains to zero the version is
// *retired*: the store drops its snapshot reference and invokes the retire
// hook exactly once. In the paper, retirement feeds a parallel
// reference-counting collector over tree nodes; here the Go runtime GC
// reclaims the C-tree nodes the moment the retired version stops
// referencing them (the mechanism substitution documented in DESIGN.md),
// and the hook feeds live-version accounting and the stream engine's GC
// telemetry.
type Versioned[G any] struct {
	writer sync.Mutex
	cur    atomic.Pointer[Version[G]]
	stamp  atomic.Uint64

	// onRetire, if set, is called exactly once per version, after its last
	// reference is dropped and its snapshot reference cleared. It must not
	// be changed once readers or writers are running (set it right after
	// construction). Called from whichever goroutine drops the last
	// reference — keep it non-blocking.
	onRetire func(stamp uint64)

	live    atomic.Int64  // versions published and not yet retired
	retired atomic.Uint64 // versions fully drained
}

// Version is an acquired snapshot of a Versioned store. It stays valid
// until released; holding it never blocks updates. After the version is
// retired (last reference dropped) the Graph field is cleared so the
// runtime GC can reclaim the snapshot even if a stale handle leaks.
type Version[G any] struct {
	// Graph is the immutable snapshot.
	Graph G
	// Stamp is the version's sequence number (monotonically increasing).
	Stamp uint64

	vs   *Versioned[G]
	refs atomic.Int64
}

// NewVersioned wraps an initial snapshot as version 0.
func NewVersioned[G any](g G) *Versioned[G] {
	vs := &Versioned[G]{}
	vs.init(g)
	return vs
}

// init installs g as version 0. Wrapper types embed Versioned and must
// init in place (the initial Version points back at the embedded store).
func (vs *Versioned[G]) init(g G) {
	v := &Version[G]{Graph: g, Stamp: 0, vs: vs}
	v.refs.Store(1) // the store's own reference to the current version
	vs.live.Store(1)
	vs.cur.Store(v)
}

// SetRetireHook registers fn to run when a version is retired (its last
// reference dropped). Must be called before concurrent use begins.
func (vs *Versioned[G]) SetRetireHook(fn func(stamp uint64)) { vs.onRetire = fn }

// tryRef increments the reference count unless it has already drained to
// zero. A count at zero can never rise again, which is what makes the
// retire hook fire exactly once and makes acquiring a retired version
// impossible.
func (v *Version[G]) tryRef() bool {
	for {
		n := v.refs.Load()
		if n <= 0 {
			return false
		}
		if v.refs.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// Acquire returns the current version, pinning it until Release. Lock-free:
// the reader retries only if the writer superseded the loaded version *and*
// its count drained in the window between the load and the increment, in
// which case a newer current version is already installed.
func (vs *Versioned[G]) Acquire() *Version[G] {
	for {
		v := vs.cur.Load()
		if v.tryRef() {
			return v
		}
	}
}

// Release drops a reference obtained from Acquire (or the store's own,
// internally) and reports whether this was the last reference — i.e. the
// version was retired by this call. Each acquired version must be released
// exactly once.
func (vs *Versioned[G]) Release(v *Version[G]) bool {
	if v.refs.Add(-1) != 0 {
		return false
	}
	// Last reference: retire. Only one goroutine can take the count to
	// zero, and tryRef never resurrects a drained count, so this path runs
	// exactly once per version. Clearing Graph drops the snapshot root so
	// the runtime GC can reclaim nodes unreachable from newer versions.
	var zero G
	v.Graph = zero
	vs.live.Add(-1)
	vs.retired.Add(1)
	if vs.onRetire != nil {
		vs.onRetire(v.Stamp)
	}
	return true
}

// publish installs g as the next version. Must be called with the writer
// lock held.
func (vs *Versioned[G]) publish(g G) *Version[G] {
	v := &Version[G]{Graph: g, Stamp: vs.stamp.Add(1), vs: vs}
	v.refs.Store(1)
	vs.live.Add(1)
	old := vs.cur.Swap(v)
	vs.Release(old) // drop the store's reference; retires old if unread
	return v
}

// Update applies fn to the latest snapshot and publishes the result,
// returning the new version's stamp. Writers are serialized; readers are
// unaffected.
func (vs *Versioned[G]) Update(fn func(G) G) uint64 {
	vs.writer.Lock()
	defer vs.writer.Unlock()
	cur := vs.cur.Load()
	v := vs.publish(fn(cur.Graph))
	return v.Stamp
}

// Current returns the latest published stamp without acquiring.
func (vs *Versioned[G]) Current() uint64 { return vs.cur.Load().Stamp }

// LiveVersions returns the number of versions published but not yet
// retired (always ≥ 1: the current version is live).
func (vs *Versioned[G]) LiveVersions() int64 { return vs.live.Load() }

// RetiredVersions returns the number of versions fully drained and
// retired since construction.
func (vs *Versioned[G]) RetiredVersions() uint64 { return vs.retired.Load() }

// VersionedGraph is the unweighted instantiation of Versioned with
// edge-batch conveniences — the acquire/set/release store §6 describes.
type VersionedGraph struct {
	Versioned[Graph]
}

// NewVersionedGraph wraps an initial graph.
func NewVersionedGraph(g Graph) *VersionedGraph {
	vg := &VersionedGraph{}
	vg.Versioned.init(g)
	return vg
}

// InsertEdges atomically inserts a batch of directed edges.
func (vg *VersionedGraph) InsertEdges(edges []Edge) uint64 {
	return vg.Update(func(g Graph) Graph { return g.InsertEdges(edges) })
}

// DeleteEdges atomically deletes a batch of directed edges.
func (vg *VersionedGraph) DeleteEdges(edges []Edge) uint64 {
	return vg.Update(func(g Graph) Graph { return g.DeleteEdges(edges) })
}

// InsertVertices atomically inserts vertices.
func (vg *VersionedGraph) InsertVertices(ids []uint32) uint64 {
	return vg.Update(func(g Graph) Graph { return g.InsertVertices(ids) })
}

// DeleteVertices atomically removes vertices and their incident edges.
func (vg *VersionedGraph) DeleteVertices(ids []uint32) uint64 {
	return vg.Update(func(g Graph) Graph { return g.DeleteVertices(ids) })
}

// VersionedWeightedGraph is the weighted instantiation of Versioned with
// edge-batch conveniences.
type VersionedWeightedGraph struct {
	Versioned[WeightedGraph]
}

// NewVersionedWeightedGraph wraps an initial weighted graph.
func NewVersionedWeightedGraph(g WeightedGraph) *VersionedWeightedGraph {
	vg := &VersionedWeightedGraph{}
	vg.Versioned.init(g)
	return vg
}

// InsertEdges atomically inserts a batch of weighted directed edges.
func (vg *VersionedWeightedGraph) InsertEdges(edges []WeightedEdge) uint64 {
	return vg.Update(func(g WeightedGraph) WeightedGraph { return g.InsertEdges(edges) })
}

// DeleteEdges atomically deletes a batch of weighted directed edges.
func (vg *VersionedWeightedGraph) DeleteEdges(edges []WeightedEdge) uint64 {
	return vg.Update(func(g WeightedGraph) WeightedGraph { return g.DeleteEdges(edges) })
}
