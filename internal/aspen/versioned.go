package aspen

import (
	"sync"
	"sync/atomic"
)

// VersionedGraph maintains the evolving graph as a sequence of immutable
// versions, implementing the acquire / set / release interface of §6. Any
// number of readers may acquire snapshots concurrently with a single writer;
// no reader or writer ever blocks another reader. Writers are serialized by
// an internal mutex, and every update becomes visible atomically, giving
// strict serializability: queries observe exactly the prefix of updates
// published before their acquire.
//
// In the paper, version reclamation needs a parallel reference-counting
// garbage collector; in Go the runtime GC already reclaims unreachable
// versions, so the reference counts here only feed the live-version
// accounting that Release reports (the semantics of the interface are
// preserved, the mechanism is the substitution documented in DESIGN.md).
type VersionedGraph struct {
	writer sync.Mutex
	cur    atomic.Pointer[Version]
	stamp  atomic.Uint64
}

// Version is an acquired snapshot. It stays valid until released; holding it
// never blocks updates.
type Version struct {
	// Graph is the immutable snapshot.
	Graph Graph
	// Stamp is the version's sequence number (monotonically increasing).
	Stamp uint64

	vg   *VersionedGraph
	refs atomic.Int64
}

// NewVersionedGraph wraps an initial graph.
func NewVersionedGraph(g Graph) *VersionedGraph {
	vg := &VersionedGraph{}
	v := &Version{Graph: g, Stamp: 0, vg: vg}
	v.refs.Store(1) // the VersionedGraph's own reference to the current version
	vg.cur.Store(v)
	return vg
}

// Acquire returns the current version, pinning it until Release. Lock-free.
// The writer may swap the current version between the load and the reference
// increment; the snapshot returned is still a valid, fully consistent
// version (Go's GC keeps it alive), matching the guarantee of the version
// maintenance algorithm the paper cites [8].
func (vg *VersionedGraph) Acquire() *Version {
	v := vg.cur.Load()
	v.refs.Add(1)
	return v
}

// Release drops a reference obtained from Acquire and reports whether this
// was the last reference to a superseded version (i.e. the version can be
// collected).
func (vg *VersionedGraph) Release(v *Version) bool {
	n := v.refs.Add(-1)
	return n == 0
}

// Set atomically publishes g as the next version. Only the internal writer
// path calls Set; it must be invoked with the writer lock held.
func (vg *VersionedGraph) set(g Graph) *Version {
	v := &Version{Graph: g, Stamp: vg.stamp.Add(1), vg: vg}
	v.refs.Store(1)
	old := vg.cur.Swap(v)
	old.refs.Add(-1) // drop the container's reference to the old version
	return v
}

// Update applies fn to the latest graph and publishes the result, returning
// the new version's stamp. Writers are serialized; readers are unaffected.
func (vg *VersionedGraph) Update(fn func(Graph) Graph) uint64 {
	vg.writer.Lock()
	defer vg.writer.Unlock()
	cur := vg.cur.Load()
	v := vg.set(fn(cur.Graph))
	return v.Stamp
}

// InsertEdges atomically inserts a batch of directed edges.
func (vg *VersionedGraph) InsertEdges(edges []Edge) uint64 {
	return vg.Update(func(g Graph) Graph { return g.InsertEdges(edges) })
}

// DeleteEdges atomically deletes a batch of directed edges.
func (vg *VersionedGraph) DeleteEdges(edges []Edge) uint64 {
	return vg.Update(func(g Graph) Graph { return g.DeleteEdges(edges) })
}

// InsertVertices atomically inserts vertices.
func (vg *VersionedGraph) InsertVertices(ids []uint32) uint64 {
	return vg.Update(func(g Graph) Graph { return g.InsertVertices(ids) })
}

// DeleteVertices atomically removes vertices and their incident edges.
func (vg *VersionedGraph) DeleteVertices(ids []uint32) uint64 {
	return vg.Update(func(g Graph) Graph { return g.DeleteVertices(ids) })
}

// Current returns the latest published stamp without acquiring.
func (vg *VersionedGraph) Current() uint64 { return vg.cur.Load().Stamp }
