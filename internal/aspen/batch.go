package aspen

import (
	"repro/internal/ctree"
	"repro/internal/parallel"
	"repro/internal/pftree"
)

// This file is the shared batch-update engine behind both Graph (V =
// struct{}) and WeightedGraph (V = float32): one radix-sorted, fused
// vertex-tree pass per batch, generic over the edge payload. It is the
// paper's batch-update algorithm (§5) — sort, group, build per-source edge
// C-trees, then MultiInsert into the vertex-tree with a combine function
// that unions edge trees — extended so payloads (edge weights, and any
// future fixed-width property) ride the same compressed path.

// vnode is a vertex-tree node: key = vertex id, value = edge C-tree,
// augmented with the total number of edges in the subtree so NumEdges is
// O(1) (paper §5, "we augment the vertex-tree to store the number of edges
// contained in its subtrees").
type vnode[V ctree.Value] = pftree.Node[uint32, ctree.Tree[V], uint64]

// vopsT is the vertex-tree operation table for payload type V.
type vopsT[V ctree.Value] = pftree.Ops[uint32, ctree.Tree[V], uint64]

func cmpU32(a, b uint32) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func newVops[V ctree.Value]() *vopsT[V] {
	return &vopsT[V]{
		Cmp: cmpU32,
		Aug: pftree.Augment[uint32, ctree.Tree[V], uint64]{
			Zero:      0,
			FromEntry: func(_ uint32, et ctree.Tree[V]) uint64 { return et.Size() },
			Combine:   func(a, b uint64) uint64 { return a + b },
		},
	}
}

// vops and wvops are the two vertex-tree tables instantiated in this
// repository: the unweighted graph and the float32-weighted graph.
var (
	vops  = newVops[struct{}]()
	wvops = newVops[float32]()
)

// groupBySourceKV splits the packed sorted batch into per-source runs of
// destination ids and (when vals is non-nil) the aligned payload runs.
// Every run is a subslice of one shared backing array (the low words of
// packed, materialized once in parallel) — no per-run copies.
func groupBySourceKV[V ctree.Value](packed []uint64, vals []V) (srcs []uint32, dsts [][]uint32, vruns [][]V) {
	if len(packed) == 0 {
		return nil, nil, nil
	}
	all := make([]uint32, len(packed))
	parallel.For(len(packed), func(i int) { all[i] = uint32(packed[i]) })
	starts := parallel.PackIndices(len(packed), func(i int) bool {
		return i == 0 || packed[i]>>32 != packed[i-1]>>32
	})
	srcs = make([]uint32, len(starts))
	dsts = make([][]uint32, len(starts))
	if vals != nil {
		vruns = make([][]V, len(starts))
	}
	parallel.ForGrain(len(starts), 64, func(j int) {
		lo := int(starts[j])
		hi := len(packed)
		if j+1 < len(starts) {
			hi = int(starts[j+1])
		}
		srcs[j] = uint32(packed[lo] >> 32)
		dsts[j] = all[lo:hi]
		if vals != nil {
			vruns[j] = vals[lo:hi]
		}
	})
	return srcs, dsts, vruns
}

// groupBySource is the id-only view of groupBySourceKV.
func groupBySource(packed []uint64) (srcs []uint32, dsts [][]uint32) {
	srcs, dsts, _ = groupBySourceKV[struct{}](packed, nil)
	return srcs, dsts
}

// insertEdgesCore inserts a sorted, deduplicated packed batch (with aligned
// payloads, nil for zero payloads) into the vertex-tree. Vertices appearing
// as sources or destinations are created as needed; destination-only
// endpoints ride along in the same MultiInsert as entries with empty edge
// trees, so the whole batch is one vertex-tree pass. Payload collisions
// with existing edges resolve to merge(oldVal, newVal), or the batch value
// when merge is nil (last-writer-wins). O(k log n) work, polylog depth.
func insertEdgesCore[V ctree.Value](ops *vopsT[V], p ctree.Params, vt *vnode[V], packed []uint64, vals []V, merge func(old, new V) V) *vnode[V] {
	srcs, dsts, vruns := groupBySourceKV(packed, vals)
	// One prototype tree interns the per-V operation table; every edge tree
	// of the batch is built from it instead of re-resolving the table.
	proto := ctree.NewKV[V](p)
	// Destination endpoints must exist as vertices so traversals can land
	// on them. Keep only the ids actually missing from the vertex tree
	// (checked in parallel against the pre-update tree): in a populated
	// graph this is usually empty, so the fused MultiInsert below carries
	// no extra entries. A missing destination that is also a batch source
	// is created by its source entry; the merge dedupes that case.
	dstIDs := make([]uint32, len(packed))
	parallel.For(len(packed), func(i int) { dstIDs[i] = uint32(packed[i]) })
	parallel.RadixSortUint32(dstIDs)
	dstIDs = parallel.DedupSortedUint32(dstIDs)
	missing := make([]bool, len(dstIDs))
	parallel.ForGrain(len(dstIDs), 64, func(i int) {
		_, ok := ops.Find(vt, dstIDs[i])
		missing[i] = !ok
	})
	w := 0
	for i, d := range dstIDs {
		if missing[i] {
			dstIDs[w] = d
			w++
		}
	}
	dstIDs = dstIDs[:w]
	// Merge sources and missing destinations into one sorted entry list:
	// sources carry their batch edge tree (built below, in parallel),
	// destination-only ids an empty tree. A single MultiInsert then both
	// unions the edge batches and creates the missing endpoints.
	entries := make([]pftree.Entry[uint32, ctree.Tree[V]], 0, len(srcs)+len(dstIDs))
	runOf := make([]int, 0, len(srcs)+len(dstIDs)) // index into dsts, -1 for dst-only
	i, j := 0, 0
	for i < len(srcs) || j < len(dstIDs) {
		switch {
		case j >= len(dstIDs) || (i < len(srcs) && srcs[i] < dstIDs[j]):
			entries = append(entries, pftree.Entry[uint32, ctree.Tree[V]]{Key: srcs[i]})
			runOf = append(runOf, i)
			i++
		case i >= len(srcs) || dstIDs[j] < srcs[i]:
			entries = append(entries, pftree.Entry[uint32, ctree.Tree[V]]{Key: dstIDs[j], Val: proto})
			runOf = append(runOf, -1)
			j++
		default: // same id is both a source and a destination
			entries = append(entries, pftree.Entry[uint32, ctree.Tree[V]]{Key: srcs[i]})
			runOf = append(runOf, i)
			i++
			j++
		}
	}
	parallel.ForGrain(len(entries), 16, func(k int) {
		if r := runOf[k]; r >= 0 {
			var vr []V
			if vruns != nil {
				vr = vruns[r]
			}
			entries[k].Val = proto.BuildLike(dsts[r], vr)
		}
	})
	return ops.MultiInsert(vt, entries, func(old, new ctree.Tree[V]) ctree.Tree[V] {
		return old.UnionWith(new, merge)
	})
}

// deleteEdgesCore removes a sorted, deduplicated packed batch from the
// vertex-tree; absent edges are ignored. With dropEmpty set, vertices
// whose edge tree becomes empty are removed from the vertex-tree (the
// opt-in isolated-vertex GC; meaningful on symmetric graphs, where deletes
// arrive in both directions).
func deleteEdgesCore[V ctree.Value](ops *vopsT[V], p ctree.Params, vt *vnode[V], packed []uint64, dropEmpty bool) *vnode[V] {
	srcs, dsts, _ := groupBySourceKV[struct{}](packed, nil)
	proto := ctree.NewKV[V](p)
	entries := make([]pftree.Entry[uint32, ctree.Tree[V]], 0, len(srcs))
	keep := make([]bool, len(srcs))
	parallel.ForGrain(len(srcs), 16, func(i int) {
		_, ok := ops.Find(vt, srcs[i])
		keep[i] = ok
	})
	for i := range srcs {
		if keep[i] {
			entries = append(entries, pftree.Entry[uint32, ctree.Tree[V]]{
				Key: srcs[i], Val: proto.BuildLike(dsts[i], nil),
			})
		}
	}
	if len(entries) == 0 {
		return vt
	}
	root := ops.MultiInsert(vt, entries, func(old, del ctree.Tree[V]) ctree.Tree[V] {
		return old.Difference(del)
	})
	if !dropEmpty {
		return root
	}
	// Drop batch-touched vertices that lost their last edge. Only entries
	// from this batch can have become empty, so the sweep is O(batch).
	emptied := make([]bool, len(entries))
	parallel.ForGrain(len(entries), 16, func(i int) {
		et, ok := ops.Find(root, entries[i].Key)
		emptied[i] = ok && et.Empty()
	})
	var dead []uint32
	for i := range entries {
		if emptied[i] {
			dead = append(dead, entries[i].Key)
		}
	}
	if len(dead) == 0 {
		return root
	}
	return ops.MultiDelete(root, dead)
}

// collectIsolatedCore removes every vertex with an empty edge tree.
func collectIsolatedCore[V ctree.Value](ops *vopsT[V], vt *vnode[V]) *vnode[V] {
	entries := make([]pftree.Entry[uint32, ctree.Tree[V]], 0, vt.Size())
	ops.ForEach(vt, func(u uint32, et ctree.Tree[V]) bool {
		if !et.Empty() {
			entries = append(entries, pftree.Entry[uint32, ctree.Tree[V]]{Key: u, Val: et})
		}
		return true
	})
	if len(entries) == vt.Size() {
		return vt
	}
	return ops.BuildSorted(entries)
}
