package aspen

import (
	"testing"

	"repro/internal/xhash"
)

func TestHistoryAsOf(t *testing.T) {
	h := NewHistory(NewGraph(params()))
	s1 := h.InsertEdges(MakeUndirected([]Edge{{Src: 0, Dst: 1}}))
	s2 := h.InsertEdges(MakeUndirected([]Edge{{Src: 1, Dst: 2}}))
	s3 := h.DeleteEdges(MakeUndirected([]Edge{{Src: 0, Dst: 1}}))
	if h.Len() != 4 {
		t.Fatalf("retained %d versions, want 4", h.Len())
	}
	if g, ok := h.AsOf(0); !ok || g.NumEdges() != 0 {
		t.Fatal("stamp 0 should be the empty graph")
	}
	if g, ok := h.AsOf(s1); !ok || g.NumEdges() != 2 {
		t.Fatal("stamp s1 wrong")
	}
	if g, ok := h.AsOf(s2); !ok || g.NumEdges() != 4 {
		t.Fatal("stamp s2 wrong")
	}
	if g, ok := h.AsOf(s3); !ok || g.NumEdges() != 2 {
		t.Fatal("stamp s3 wrong")
	}
	// Querying between stamps resolves to the newest not-after version.
	if g, ok := h.AsOf(s3 + 100); !ok || g.NumEdges() != h.Latest().NumEdges() {
		t.Fatal("future stamp should resolve to latest")
	}
}

func TestDiffEdges(t *testing.T) {
	g1 := NewGraph(params()).InsertEdges([]Edge{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 3, Dst: 4}})
	g2 := g1.DeleteEdges([]Edge{{Src: 0, Dst: 2}}).InsertEdges([]Edge{{Src: 5, Dst: 6}})
	added, removed := DiffEdges(g1, g2)
	if len(added) != 1 || added[0] != (Edge{Src: 5, Dst: 6}) {
		t.Fatalf("added = %v", added)
	}
	if len(removed) != 1 || removed[0] != (Edge{Src: 0, Dst: 2}) {
		t.Fatalf("removed = %v", removed)
	}
	// Identity diff.
	a2, r2 := DiffEdges(g2, g2)
	if len(a2) != 0 || len(r2) != 0 {
		t.Fatal("self-diff should be empty")
	}
}

func TestDiffEdgesRandomized(t *testing.T) {
	r := xhash.NewRNG(17)
	g1 := NewGraph(params()).InsertEdges(randomEdges(r, 400, 60))
	ins := randomEdges(r, 100, 60)
	del := randomEdges(r, 100, 60)
	g2 := g1.InsertEdges(ins).DeleteEdges(del)
	added, removed := DiffEdges(g1, g2)
	// Applying the diff to g1 must reproduce g2 exactly.
	g3 := g1.InsertEdges(added).DeleteEdges(removed)
	if g3.NumEdges() != g2.NumEdges() {
		t.Fatalf("patched edges = %d, want %d", g3.NumEdges(), g2.NumEdges())
	}
	moreAdded, moreRemoved := DiffEdges(g2, g3)
	if len(moreAdded) != 0 || len(moreRemoved) != 0 {
		t.Fatalf("patch incomplete: +%d -%d", len(moreAdded), len(moreRemoved))
	}
}

func TestHistoryConcurrentReads(t *testing.T) {
	h := NewHistory(NewGraph(params()))
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := uint32(0); i < 50; i++ {
			h.InsertEdges([]Edge{{Src: i, Dst: i + 1}})
		}
	}()
	for i := 0; i < 200; i++ {
		if g, ok := h.AsOf(uint64(i % 50)); ok {
			_ = g.NumEdges()
		}
	}
	<-done
	if h.Latest().NumEdges() != 50 {
		t.Fatalf("final edges = %d", h.Latest().NumEdges())
	}
}
