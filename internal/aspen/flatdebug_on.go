//go:build aspendebug

package aspen

// flatDebug gates the stale-flat-view assertions. Built with
// -tags aspendebug, MustCurrent panics when a flat view is used against a
// snapshot it was not built from (the staleness footgun: a flat view is
// tied to one immutable version and never sees later updates).
const flatDebug = true
