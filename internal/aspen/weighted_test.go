package aspen

import (
	"math"
	"testing"

	"repro/internal/xhash"
)

func TestWeightedInsertFind(t *testing.T) {
	g := NewWeightedGraph()
	g = g.InsertEdges([]WeightedEdge{
		{Src: 0, Dst: 1, Weight: 1.5},
		{Src: 0, Dst: 2, Weight: 2.5},
		{Src: 1, Dst: 0, Weight: 1.5},
	})
	// Like the unweighted graph, the shared batch path creates
	// destination-only endpoints (vertex 2) so traversals can land on them.
	if g.NumEdges() != 3 || g.NumVertices() != 3 {
		t.Fatalf("m=%d n=%d", g.NumEdges(), g.NumVertices())
	}
	if w, ok := g.Weight(0, 2); !ok || w != 2.5 {
		t.Fatalf("Weight(0,2) = %f,%v", w, ok)
	}
	if _, ok := g.Weight(0, 9); ok {
		t.Fatal("phantom edge")
	}
	if g.Degree(0) != 2 {
		t.Fatalf("Degree(0) = %d", g.Degree(0))
	}
}

func TestWeightedUpdateOverwrites(t *testing.T) {
	g := NewWeightedGraph().InsertEdges([]WeightedEdge{{Src: 1, Dst: 2, Weight: 1}})
	g2 := g.InsertEdges([]WeightedEdge{{Src: 1, Dst: 2, Weight: 9}})
	if w, _ := g2.Weight(1, 2); w != 9 {
		t.Fatalf("weight not updated: %f", w)
	}
	// Persistence: the old version keeps the old weight.
	if w, _ := g.Weight(1, 2); w != 1 {
		t.Fatalf("old version mutated: %f", w)
	}
	if g2.NumEdges() != 1 {
		t.Fatalf("update duplicated the edge: m=%d", g2.NumEdges())
	}
}

func TestWeightedDelete(t *testing.T) {
	g := NewWeightedGraph().InsertEdges([]WeightedEdge{
		{Src: 0, Dst: 1, Weight: 1},
		{Src: 0, Dst: 2, Weight: 2},
	})
	g2 := g.DeleteEdges([]WeightedEdge{{Src: 0, Dst: 1}, {Src: 5, Dst: 6}})
	if g2.NumEdges() != 1 {
		t.Fatalf("m = %d", g2.NumEdges())
	}
	if _, ok := g2.Weight(0, 1); ok {
		t.Fatal("edge survived delete")
	}
	if w, ok := g2.Weight(0, 2); !ok || w != 2 {
		t.Fatal("unrelated edge damaged")
	}
}

func TestWeightedModel(t *testing.T) {
	r := xhash.NewRNG(8)
	g := NewWeightedGraph()
	ref := map[uint64]float32{}
	for round := 0; round < 10; round++ {
		var batch []WeightedEdge
		for i := 0; i < 50; i++ {
			e := WeightedEdge{
				Src:    uint32(r.Intn(20)),
				Dst:    uint32(r.Intn(20)),
				Weight: float32(r.Intn(100)),
			}
			batch = append(batch, e)
			ref[uint64(e.Src)<<32|uint64(e.Dst)] = e.Weight
		}
		g = g.InsertEdges(batch)
	}
	if int(g.NumEdges()) != len(ref) {
		t.Fatalf("m = %d, want %d", g.NumEdges(), len(ref))
	}
	var wantTotal float64
	for k, w := range ref {
		u, v := uint32(k>>32), uint32(k)
		got, ok := g.Weight(u, v)
		if !ok || got != w {
			t.Fatalf("Weight(%d,%d) = %f,%v want %f", u, v, got, ok, w)
		}
		wantTotal += float64(w)
	}
	if math.Abs(g.TotalWeight()-wantTotal) > 1e-3 {
		t.Fatalf("TotalWeight = %f, want %f", g.TotalWeight(), wantTotal)
	}
}

func TestWeightedNeighborOrder(t *testing.T) {
	g := NewWeightedGraph().InsertEdges([]WeightedEdge{
		{Src: 0, Dst: 5, Weight: 5},
		{Src: 0, Dst: 1, Weight: 1},
		{Src: 0, Dst: 3, Weight: 3},
	})
	var order []uint32
	g.ForEachNeighborWeight(0, func(v uint32, w float32) bool {
		order = append(order, v)
		if float32(v) != w {
			t.Fatalf("weight of %d is %f", v, w)
		}
		return true
	})
	if len(order) != 3 || order[0] != 1 || order[1] != 3 || order[2] != 5 {
		t.Fatalf("order = %v", order)
	}
}
