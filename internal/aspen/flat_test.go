package aspen

import (
	"testing"

	"repro/internal/parallel"
	"repro/internal/xhash"
)

// TestFlatWeightedSnapshotMatchesGraph is the weighted analogue of
// TestFlatSnapshotMatchesGraph: the generic flat view must agree with the
// weighted graph on degrees, presence, neighbor order and weights.
func TestFlatWeightedSnapshotMatchesGraph(t *testing.T) {
	r := xhash.NewRNG(51)
	g := NewWeightedGraph().InsertEdges(randomWeightedBatch(r, 3000, 500))
	fs := BuildFlatWeightedSnapshot(g)
	if fs.Order() != g.Order() || fs.NumEdges() != g.NumEdges() {
		t.Fatal("flat weighted snapshot header mismatch")
	}
	degs := fs.Degrees()
	if len(degs) != g.Order() {
		t.Fatalf("Degrees length = %d, want %d", len(degs), g.Order())
	}
	for u := uint32(0); int(u) < g.Order(); u++ {
		if fs.Degree(u) != g.Degree(u) || int(degs[u]) != g.Degree(u) {
			t.Fatalf("degree mismatch at %d", u)
		}
		if fs.HasVertex(u) != g.HasVertex(u) {
			t.Fatalf("presence mismatch at %d", u)
		}
		type nbr struct {
			v uint32
			w float32
		}
		var a, b []nbr
		g.ForEachNeighborW(u, func(v uint32, w float32) bool { a = append(a, nbr{v, w}); return true })
		fs.ForEachNeighborW(u, func(v uint32, w float32) bool { b = append(b, nbr{v, w}); return true })
		if len(a) != len(b) {
			t.Fatalf("neighbor count mismatch at %d", u)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("weighted neighbor mismatch at %d: %v vs %v", u, a[i], b[i])
			}
		}
	}
	// Point lookups agree too.
	for u := uint32(0); int(u) < g.Order(); u += 13 {
		g.ForEachNeighborW(u, func(v uint32, w float32) bool {
			fw, ok := fs.Weight(u, v)
			if !ok || fw != w {
				t.Fatalf("Weight(%d,%d) = %v,%v, want %v", u, v, fw, ok, w)
			}
			return true
		})
	}
}

// TestFlatBuildParallelMatchesSerial pins the per-worker-range parallel
// build against a 1-worker build of the same snapshot.
func TestFlatBuildParallelMatchesSerial(t *testing.T) {
	r := xhash.NewRNG(52)
	g := NewGraph(params()).InsertEdges(randomEdges(r, 20_000, 3_000))
	par := BuildFlatSnapshot(g)
	old := parallel.Procs
	parallel.Procs = 1
	ser := BuildFlatSnapshot(g)
	parallel.Procs = old
	if par.Order() != ser.Order() {
		t.Fatal("order mismatch")
	}
	for u := uint32(0); int(u) < par.Order(); u++ {
		if par.Degree(u) != ser.Degree(u) || par.HasVertex(u) != ser.HasVertex(u) {
			t.Fatalf("parallel and serial flat builds disagree at %d", u)
		}
		pe, pok := par.EdgeTree(u)
		se, sok := ser.EdgeTree(u)
		if pok != sok || (pok && !pe.EqualRep(se)) {
			t.Fatalf("edge-tree handle mismatch at %d", u)
		}
	}
}

// TestFlatSnapshotTotality: the dense view must stay total on ids outside
// the id space — degree 0, no neighbors, no vertex — never panic (the
// satellite-(b) contract).
func TestFlatSnapshotTotality(t *testing.T) {
	r := xhash.NewRNG(53)
	g := NewGraph(params()).InsertEdges(randomEdges(r, 500, 100))
	fs := BuildFlatSnapshot(g)
	fw := BuildFlatWeightedSnapshot(NewWeightedGraph().InsertEdges(randomWeightedBatch(r, 500, 100)))
	for _, u := range []uint32{uint32(g.Order()), uint32(g.Order()) + 1, 1 << 30, ^uint32(0)} {
		if fs.Degree(u) != 0 || fw.Degree(u) != 0 {
			t.Fatalf("out-of-range degree(%d) != 0", u)
		}
		if fs.HasVertex(u) || fw.HasVertex(u) {
			t.Fatalf("out-of-range HasVertex(%d)", u)
		}
		fs.ForEachNeighbor(u, func(uint32) bool { t.Fatalf("neighbor yielded for %d", u); return false })
		fs.ForEachNeighborPar(u, func(uint32) { t.Errorf("parallel neighbor yielded for %d", u) })
		fw.ForEachNeighborW(u, func(uint32, float32) bool { t.Fatalf("weighted neighbor yielded for %d", u); return false })
		if _, ok := fs.EdgeTree(u); ok {
			t.Fatalf("out-of-range EdgeTree(%d) present", u)
		}
		if _, ok := fw.Weight(u, 0); ok {
			t.Fatalf("out-of-range Weight(%d) present", u)
		}
	}
}

// TestFlatSnapshotStaleness documents the §5.1 footgun: a flat view is tied
// to the immutable version it was built from. Updates produce new graphs;
// the old view keeps answering for the old version, and Current detects the
// divergence.
func TestFlatSnapshotStaleness(t *testing.T) {
	r := xhash.NewRNG(54)
	g := NewGraph(params()).InsertEdges(randomEdges(r, 1000, 200))
	fs := BuildFlatSnapshot(g)
	if !fs.Current(g) {
		t.Fatal("fresh view must be current for its snapshot")
	}
	fs.MustCurrent(g) // no-op in release builds, must not panic under aspendebug
	degBefore := fs.Degree(7)

	g2 := g.InsertEdges(MakeUndirected(randomEdges(r, 500, 200)))
	if fs.Current(g2) {
		t.Fatal("view must not report current for a newer version")
	}
	if !fs.Current(g) {
		t.Fatal("view must stay current for its own version after updates elsewhere")
	}
	if fs.Degree(7) != degBefore || fs.NumEdges() != g.NumEdges() {
		t.Fatal("view drifted: flat snapshots must be frozen at their version")
	}
	// The fresh version gets its own view.
	fs2 := BuildFlatSnapshot(g2)
	if !fs2.Current(g2) || fs2.Current(g) {
		t.Fatal("rebuilt view bound to the wrong version")
	}
	if flatDebug {
		// Under -tags aspendebug a stale use must panic.
		defer func() {
			if recover() == nil {
				t.Fatal("MustCurrent should panic on a stale view under aspendebug")
			}
		}()
		fs.MustCurrent(g2)
	}
}
