package aspen_test

import (
	"fmt"
	"testing"

	"repro/internal/aspen"
	"repro/internal/ctree"
	"repro/internal/rmat"
)

// patchBenchSetup builds the rMAT bench graph (scale 20, 2M directed edges
// after symmetrization — small enough to set up in seconds, big enough that
// the O(n) rebuild dwarfs an O(batch) patch), a prebuilt flat view of it,
// and a successor version one batch ahead.
func patchBenchSetup(b *testing.B, batch uint64) (aspen.Graph, *aspen.FlatSnapshot, aspen.Graph) {
	b.Helper()
	gen := rmat.NewGenerator(20, 99)
	g := aspen.NewGraph(ctree.DefaultParams()).InsertEdges(aspen.MakeUndirected(gen.Edges(0, 1_000_000)))
	fs := aspen.BuildFlatSnapshot(g)
	g2 := g.InsertEdges(aspen.MakeUndirected(gen.Edges(1_000_000, 1_000_000+batch)))
	return g, fs, g2
}

// BenchmarkFlatRebuild is the O(n) baseline: materialize the successor
// version's flat view from scratch, the pre-PR cost of every commit under
// PrebuildFlat.
func BenchmarkFlatRebuild(b *testing.B) {
	for _, batch := range []uint64{1_000, 10_000} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			_, _, g2 := patchBenchSetup(b, batch)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				aspen.BuildFlatSnapshot(g2)
			}
		})
	}
}

// BenchmarkFlatPatch is the incremental path: derive the successor view
// from the previous one via the version diff, O(batch) copy-on-write work.
// The acceptance bar for this PR is ≥5× over BenchmarkFlatRebuild at
// batch=1k (gated in CI via benchdiff allocs, checked here by inspection).
func BenchmarkFlatPatch(b *testing.B) {
	for _, batch := range []uint64{1_000, 10_000} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			_, fs, g2 := patchBenchSetup(b, batch)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				aspen.PatchFlatSnapshot(fs, g2)
			}
		})
	}
}

// BenchmarkDiffVersions isolates the tree-diff walk the patch rides on:
// O(d log(n/d + 1)) on EqualRep-sharing versions.
func BenchmarkDiffVersions(b *testing.B) {
	base, _, next := patchBenchSetup(b, 1_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		aspen.DiffVersions(base, next, func(aspen.VertexDelta[struct{}]) bool { return true })
	}
}
