package aspen

import (
	"testing"
	"testing/quick"

	"repro/internal/ctree"
	"repro/internal/xhash"
)

func params() ctree.Params { return ctree.Params{B: 8, Codec: 0} }

// refGraph is a reference adjacency-map implementation for model checking.
type refGraph map[uint32]map[uint32]bool

func (r refGraph) insert(edges []Edge) {
	for _, e := range edges {
		if r[e.Src] == nil {
			r[e.Src] = map[uint32]bool{}
		}
		r[e.Src][e.Dst] = true
		if r[e.Dst] == nil {
			r[e.Dst] = map[uint32]bool{}
		}
	}
}

func (r refGraph) delete(edges []Edge) {
	for _, e := range edges {
		if r[e.Src] != nil {
			delete(r[e.Src], e.Dst)
		}
	}
}

func (r refGraph) numEdges() uint64 {
	var m uint64
	for _, nbrs := range r {
		m += uint64(len(nbrs))
	}
	return m
}

func checkAgainstRef(t *testing.T, g Graph, ref refGraph) {
	t.Helper()
	if g.NumVertices() != len(ref) {
		t.Fatalf("NumVertices = %d, want %d", g.NumVertices(), len(ref))
	}
	if g.NumEdges() != ref.numEdges() {
		t.Fatalf("NumEdges = %d, want %d", g.NumEdges(), ref.numEdges())
	}
	for u, nbrs := range ref {
		if g.Degree(u) != len(nbrs) {
			t.Fatalf("Degree(%d) = %d, want %d", u, g.Degree(u), len(nbrs))
		}
		for v := range nbrs {
			if !g.HasEdge(u, v) {
				t.Fatalf("missing edge (%d,%d)", u, v)
			}
		}
		et, _ := g.EdgeTree(u)
		if err := et.CheckInvariants(); err != nil {
			t.Fatalf("edge tree of %d: %v", u, err)
		}
		et.ForEach(func(v uint32) bool {
			if !nbrs[v] {
				t.Fatalf("spurious edge (%d,%d)", u, v)
			}
			return true
		})
	}
}

func randomEdges(r *xhash.RNG, k, n int) []Edge {
	edges := make([]Edge, k)
	for i := range edges {
		edges[i] = Edge{Src: uint32(r.Intn(n)), Dst: uint32(r.Intn(n))}
	}
	return edges
}

func TestInsertDeleteModel(t *testing.T) {
	r := xhash.NewRNG(1)
	g := NewGraph(params())
	ref := refGraph{}
	for round := 0; round < 20; round++ {
		ins := randomEdges(r, 200, 50)
		g = g.InsertEdges(ins)
		ref.insert(ins)
		del := randomEdges(r, 80, 50)
		g = g.DeleteEdges(del)
		ref.delete(del)
	}
	checkAgainstRef(t, g, ref)
}

func TestInsertEdgesDedupes(t *testing.T) {
	g := NewGraph(params())
	g = g.InsertEdges([]Edge{{1, 2}, {1, 2}, {1, 2}})
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
	if g.NumVertices() != 2 {
		t.Fatalf("NumVertices = %d, want 2 (src and dst)", g.NumVertices())
	}
}

func TestDeleteAbsentEdges(t *testing.T) {
	g := NewGraph(params()).InsertEdges([]Edge{{1, 2}})
	g2 := g.DeleteEdges([]Edge{{3, 4}, {1, 9}})
	if g2.NumEdges() != 1 || !g2.HasEdge(1, 2) {
		t.Fatal("deleting absent edges changed the graph")
	}
}

func TestFromAdjacency(t *testing.T) {
	adj := [][]uint32{{1, 2}, {0, 2}, {0, 1}, {}}
	g := FromAdjacency(params(), adj)
	if g.NumVertices() != 4 {
		t.Fatalf("NumVertices = %d", g.NumVertices())
	}
	if g.NumEdges() != 6 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
	if g.Degree(3) != 0 {
		t.Fatal("isolated vertex should have degree 0")
	}
	if g.Order() != 4 {
		t.Fatalf("Order = %d", g.Order())
	}
}

func TestVertexOperations(t *testing.T) {
	g := NewGraph(params())
	g = g.InsertVertices([]uint32{5, 1, 9, 5})
	if g.NumVertices() != 3 {
		t.Fatalf("NumVertices = %d", g.NumVertices())
	}
	g = g.InsertEdges(MakeUndirected([]Edge{{1, 5}, {5, 9}}))
	if g.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
	// Deleting vertex 5 must delete edges into it as well.
	g2 := g.DeleteVertices([]uint32{5})
	if g2.HasVertex(5) {
		t.Fatal("vertex 5 survived")
	}
	if g2.NumEdges() != 0 {
		t.Fatalf("NumEdges after vertex delete = %d, want 0", g2.NumEdges())
	}
	if !g2.HasVertex(1) || !g2.HasVertex(9) {
		t.Fatal("unrelated vertices removed")
	}
	// Original snapshot untouched.
	if g.NumEdges() != 4 || !g.HasVertex(5) {
		t.Fatal("functional update mutated the original")
	}
}

func TestInsertVerticesKeepsEdges(t *testing.T) {
	g := NewGraph(params()).InsertEdges([]Edge{{1, 2}})
	g2 := g.InsertVertices([]uint32{1})
	if !g2.HasEdge(1, 2) {
		t.Fatal("re-inserting an existing vertex dropped its edges")
	}
}

func TestBatchUpdateProperty(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := xhash.NewRNG(seed)
		g := NewGraph(params())
		ref := refGraph{}
		for round := 0; round < 5; round++ {
			ins := randomEdges(r, 60, 30)
			g = g.InsertEdges(ins)
			ref.insert(ins)
			del := randomEdges(r, 30, 30)
			g = g.DeleteEdges(del)
			ref.delete(del)
		}
		if g.NumEdges() != ref.numEdges() {
			return false
		}
		for u, nbrs := range ref {
			for v := range nbrs {
				if !g.HasEdge(u, v) {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotPersistence(t *testing.T) {
	g := NewGraph(params())
	var versions []Graph
	var sizes []uint64
	r := xhash.NewRNG(4)
	for i := 0; i < 15; i++ {
		versions = append(versions, g)
		sizes = append(sizes, g.NumEdges())
		g = g.InsertEdges(randomEdges(r, 100, 40))
	}
	for i := range versions {
		if versions[i].NumEdges() != sizes[i] {
			t.Fatalf("version %d changed size: %d != %d", i, versions[i].NumEdges(), sizes[i])
		}
	}
}

func TestFlatSnapshotMatchesGraph(t *testing.T) {
	r := xhash.NewRNG(5)
	g := NewGraph(params()).InsertEdges(randomEdges(r, 3000, 500))
	fs := BuildFlatSnapshot(g)
	if fs.Order() != g.Order() || fs.NumEdges() != g.NumEdges() {
		t.Fatal("flat snapshot header mismatch")
	}
	for u := uint32(0); int(u) < g.Order(); u++ {
		if fs.Degree(u) != g.Degree(u) {
			t.Fatalf("degree mismatch at %d", u)
		}
		if fs.HasVertex(u) != g.HasVertex(u) {
			t.Fatalf("presence mismatch at %d", u)
		}
		var a, b []uint32
		g.ForEachNeighbor(u, func(v uint32) bool { a = append(a, v); return true })
		fs.ForEachNeighbor(u, func(v uint32) bool { b = append(b, v); return true })
		if len(a) != len(b) {
			t.Fatalf("neighbor count mismatch at %d", u)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("neighbor mismatch at %d", u)
			}
		}
	}
	if fs.MemoryBytes() == 0 {
		t.Fatal("flat snapshot memory should be positive")
	}
}

func TestStats(t *testing.T) {
	r := xhash.NewRNG(6)
	g := NewGraph(ctree.DefaultParams()).InsertEdges(randomEdges(r, 5000, 300))
	s := g.Stats()
	if s.VertexNodes != g.NumVertices() {
		t.Fatalf("VertexNodes = %d, want %d", s.VertexNodes, g.NumVertices())
	}
	if s.Edge.Elements != g.NumEdges() {
		t.Fatalf("edge elements = %d, want %d", s.Edge.Elements, g.NumEdges())
	}
}

func TestMakeUndirected(t *testing.T) {
	u := MakeUndirected([]Edge{{1, 2}})
	if len(u) != 2 || u[0] != (Edge{1, 2}) || u[1] != (Edge{2, 1}) {
		t.Fatalf("MakeUndirected = %v", u)
	}
}

func TestForEachNeighborParMatchesSequential(t *testing.T) {
	r := xhash.NewRNG(21)
	g := NewGraph(ctree.DefaultParams()).InsertEdges(randomEdges(r, 20_000, 40))
	fs := BuildFlatSnapshot(g)
	for u := uint32(0); int(u) < g.Order(); u += 7 {
		want := map[uint32]bool{}
		g.ForEachNeighbor(u, func(v uint32) bool { want[v] = true; return true })
		for _, view := range []interface {
			ForEachNeighborPar(uint32, func(uint32))
		}{g, fs} {
			got := make(chan uint32, 256)
			go func() {
				view.ForEachNeighborPar(u, func(v uint32) { got <- v })
				close(got)
			}()
			seen := map[uint32]bool{}
			for v := range got {
				if seen[v] {
					t.Fatalf("vertex %d: neighbor %d delivered twice", u, v)
				}
				seen[v] = true
			}
			if len(seen) != len(want) {
				t.Fatalf("vertex %d: %d neighbors, want %d", u, len(seen), len(want))
			}
		}
	}
}
