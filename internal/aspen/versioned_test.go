package aspen

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/ctree"
	"repro/internal/xhash"
)

func TestAcquireReleaseAccounting(t *testing.T) {
	vg := NewVersionedGraph(NewGraph(params()))
	v1 := vg.Acquire()
	v2 := vg.Acquire()
	if v1 != v2 {
		t.Fatal("concurrent acquires of one version should share it")
	}
	if vg.Release(v1) {
		t.Fatal("release should not report last while current")
	}
	vg.InsertEdges([]Edge{{1, 2}}) // supersedes v1
	if !vg.Release(v2) {
		t.Fatal("releasing the last reference of a superseded version should report true")
	}
}

func TestUpdateVisibility(t *testing.T) {
	vg := NewVersionedGraph(NewGraph(params()))
	before := vg.Acquire()
	stamp := vg.InsertEdges(MakeUndirected([]Edge{{1, 2}}))
	after := vg.Acquire()
	if before.Graph.NumEdges() != 0 {
		t.Fatal("old snapshot observed the update")
	}
	if after.Graph.NumEdges() != 2 {
		t.Fatalf("new snapshot has %d edges, want 2", after.Graph.NumEdges())
	}
	if after.Stamp != stamp || vg.Current() != stamp {
		t.Fatal("stamps inconsistent")
	}
	vg.Release(before)
	vg.Release(after)
}

// TestSnapshotIsolation checks strict serializability from the reader side:
// a batch inserts a clique edge set atomically, so any snapshot must observe
// either none or all edges of a batch, never a partial batch.
func TestSnapshotIsolation(t *testing.T) {
	vg := NewVersionedGraph(NewGraph(params()))
	const batches = 50
	const perBatch = 20
	var stop atomic.Bool
	var readerErr atomic.Value

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			v := vg.Acquire()
			m := v.Graph.NumEdges()
			if m%perBatch != 0 {
				readerErr.Store(m)
				stop.Store(true)
			}
			vg.Release(v)
		}
	}()
	go func() {
		defer wg.Done()
		r := xhash.NewRNG(7)
		for b := 0; b < batches && !stop.Load(); b++ {
			edges := make([]Edge, perBatch)
			for i := range edges {
				// Unique endpoints per batch so every batch adds
				// exactly perBatch directed edges.
				base := uint32(b*2*perBatch + 2*i)
				edges[i] = Edge{Src: base, Dst: base + 1}
			}
			_ = r
			vg.InsertEdges(edges)
		}
		stop.Store(true)
	}()
	wg.Wait()
	if v := readerErr.Load(); v != nil {
		t.Fatalf("reader observed partial batch: %d edges", v)
	}
	final := vg.Acquire()
	if final.Graph.NumEdges() != batches*perBatch {
		t.Fatalf("final edges = %d, want %d", final.Graph.NumEdges(), batches*perBatch)
	}
	vg.Release(final)
}

func TestConcurrentWriters(t *testing.T) {
	vg := NewVersionedGraph(NewGraph(ctree.DefaultParams()))
	const writers = 4
	const each = 25
	var wg sync.WaitGroup
	wg.Add(writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				u := uint32(w*1000 + i)
				vg.InsertEdges([]Edge{{Src: u, Dst: u + 1}})
			}
		}(w)
	}
	wg.Wait()
	v := vg.Acquire()
	defer vg.Release(v)
	if got := v.Graph.NumEdges(); got != writers*each {
		t.Fatalf("NumEdges = %d, want %d", got, writers*each)
	}
	if vg.Current() != writers*each {
		t.Fatalf("stamp = %d, want %d", vg.Current(), writers*each)
	}
}

// TestRetireHookExactlyOnce drives acquires, releases and publishes from
// concurrent goroutines and asserts the epoch discipline: every superseded
// version retires exactly once, no version retires while a reader holds it,
// and at quiescence only the current version is live.
func TestRetireHookExactlyOnce(t *testing.T) {
	vg := NewVersionedGraph(NewGraph(params()))
	var mu sync.Mutex
	retired := map[uint64]int{}
	vg.SetRetireHook(func(stamp uint64) {
		mu.Lock()
		retired[stamp]++
		mu.Unlock()
	})
	const updates = 200
	const readers = 4
	var wg sync.WaitGroup
	var stop atomic.Bool
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				v := vg.Acquire()
				mu.Lock()
				n := retired[v.Stamp]
				mu.Unlock()
				if n != 0 {
					t.Error("acquired a retired version")
					stop.Store(true)
				}
				vg.Release(v)
			}
		}()
	}
	for i := 0; i < updates && !stop.Load(); i++ {
		vg.InsertEdges([]Edge{{Src: uint32(2 * i), Dst: uint32(2*i + 1)}})
	}
	stop.Store(true)
	wg.Wait()

	if live := vg.LiveVersions(); live != 1 {
		t.Fatalf("LiveVersions = %d at quiescence, want 1", live)
	}
	published := vg.Current() + 1 // stamps 0..Current
	if got := vg.RetiredVersions(); got != published-1 {
		t.Fatalf("RetiredVersions = %d, want %d", got, published-1)
	}
	mu.Lock()
	defer mu.Unlock()
	for stamp, n := range retired {
		if n != 1 {
			t.Fatalf("stamp %d retired %d times", stamp, n)
		}
	}
	if uint64(len(retired)) != published-1 {
		t.Fatalf("%d stamps retired, want %d", len(retired), published-1)
	}
}

// TestRetireClearsSnapshot checks that a retired version drops its snapshot
// reference (the memory-reclamation substitute documented in DESIGN.md).
func TestRetireClearsSnapshot(t *testing.T) {
	vg := NewVersionedGraph(NewGraph(params()))
	vg.InsertEdges(MakeUndirected([]Edge{{1, 2}}))
	v := vg.Acquire()
	if v.Graph.NumEdges() != 2 {
		t.Fatal("acquired snapshot incomplete")
	}
	vg.InsertEdges(MakeUndirected([]Edge{{3, 4}})) // supersede v
	if !vg.Release(v) {
		t.Fatal("release of last reference should retire")
	}
	// The handle leaks past its release here only to observe reclamation.
	if v.Graph.NumVertices() != 0 {
		t.Fatal("retired version still references its snapshot")
	}
}

func TestVersionedWeightedGraph(t *testing.T) {
	vg := NewVersionedWeightedGraph(NewWeightedGraph())
	before := vg.Acquire()
	stamp := vg.InsertEdges([]WeightedEdge{{Src: 1, Dst: 2, Weight: 0.5}})
	after := vg.Acquire()
	if before.Graph.NumEdges() != 0 || after.Graph.NumEdges() != 1 {
		t.Fatal("weighted snapshot isolation violated")
	}
	if w, ok := after.Graph.Weight(1, 2); !ok || w != 0.5 {
		t.Fatalf("Weight(1,2) = %v,%v", w, ok)
	}
	if after.Stamp != stamp {
		t.Fatal("stamp mismatch")
	}
	vg.Release(before)
	vg.Release(after)
	vg.DeleteEdges([]WeightedEdge{{Src: 1, Dst: 2}})
	final := vg.Acquire()
	defer vg.Release(final)
	if final.Graph.NumEdges() != 0 {
		t.Fatal("delete not applied")
	}
}

func TestConcurrentFlatSnapshotDuringUpdates(t *testing.T) {
	vg := NewVersionedGraph(NewGraph(params()))
	vg.InsertEdges(MakeUndirected([]Edge{{0, 1}, {1, 2}, {2, 3}}))
	var wg sync.WaitGroup
	wg.Add(2)
	var bad atomic.Bool
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			v := vg.Acquire()
			fs := BuildFlatSnapshot(v.Graph)
			if fs.NumEdges() != v.Graph.NumEdges() {
				bad.Store(true)
			}
			vg.Release(v)
		}
	}()
	go func() {
		defer wg.Done()
		for i := uint32(0); i < 50; i++ {
			vg.InsertEdges(MakeUndirected([]Edge{{i, i + 100}}))
		}
	}()
	wg.Wait()
	if bad.Load() {
		t.Fatal("flat snapshot disagreed with its version")
	}
}
