package aspen

import (
	"sort"
	"sync"

	"repro/internal/ctree"
)

// History retains every published version of an evolving graph and answers
// time-travel queries — the "historical queries" the paper's conclusion
// singles out as a natural extension, since purely-functional trees keep any
// number of versions alive simply by keeping their roots (§8.1). Retention
// is O(1) per version beyond the structural sharing the trees already pay.
type History struct {
	mu       sync.RWMutex
	stamps   []uint64
	versions []Graph
	// pins holds the acquired version handle backing each retained entry
	// (nil for the initial stamp-0 entry, which predates the store's
	// version sequence). Retention therefore participates in the epoch
	// refcounting: a retained version is never retired until TrimBefore
	// releases its pin, and each pin is released exactly once.
	pins []*Version[Graph]
	vg   *VersionedGraph
}

// NewHistory wraps an initial graph, retaining it as stamp 0.
func NewHistory(g Graph) *History {
	return &History{
		stamps:   []uint64{0},
		versions: []Graph{g},
		pins:     []*Version[Graph]{nil},
		vg:       NewVersionedGraph(g),
	}
}

// Versioned exposes the underlying versioned graph (for concurrent readers).
func (h *History) Versioned() *VersionedGraph { return h.vg }

// retain records the just-published version, keeping v's reference pinned
// until TrimBefore.
func (h *History) retain(stamp uint64, v *Version[Graph]) {
	h.mu.Lock()
	h.stamps = append(h.stamps, stamp)
	h.versions = append(h.versions, v.Graph)
	h.pins = append(h.pins, v)
	h.mu.Unlock()
}

// InsertEdges publishes a new version with the batch inserted and retains it.
func (h *History) InsertEdges(edges []Edge) uint64 {
	stamp := h.vg.Update(func(g Graph) Graph { return g.InsertEdges(edges) })
	h.retain(stamp, h.vg.Acquire())
	return stamp
}

// DeleteEdges publishes a new version with the batch deleted and retains it.
func (h *History) DeleteEdges(edges []Edge) uint64 {
	stamp := h.vg.Update(func(g Graph) Graph { return g.DeleteEdges(edges) })
	h.retain(stamp, h.vg.Acquire())
	return stamp
}

// TrimBefore drops every retained version with stamp < s, keeping the rest
// (the newest version is always kept even if its stamp is below s, so
// Latest never dangles). Each dropped entry's pinned reference is released
// exactly once, so superseded versions with no other readers are retired —
// with the retire hook firing — by this call. Returns the number of
// versions dropped.
func (h *History) TrimBefore(s uint64) int {
	h.mu.Lock()
	cut := sort.Search(len(h.stamps), func(i int) bool { return h.stamps[i] >= s })
	if cut == len(h.stamps) {
		cut = len(h.stamps) - 1 // always keep the newest
	}
	drop := make([]*Version[Graph], cut)
	copy(drop, h.pins[:cut])
	h.stamps = append([]uint64(nil), h.stamps[cut:]...)
	h.versions = append([]Graph(nil), h.versions[cut:]...)
	h.pins = append([]*Version[Graph](nil), h.pins[cut:]...)
	h.mu.Unlock()
	// Release outside the lock: the retire hook runs on whichever goroutine
	// drops the last reference and must not re-enter History under mu.
	for _, v := range drop {
		if v != nil {
			h.vg.Release(v)
		}
	}
	return cut
}

// Len returns the number of retained versions.
func (h *History) Len() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.stamps)
}

// AsOf returns the newest version with stamp <= s.
func (h *History) AsOf(s uint64) (Graph, bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	i := sort.Search(len(h.stamps), func(i int) bool { return h.stamps[i] > s })
	if i == 0 {
		return Graph{}, false
	}
	return h.versions[i-1], true
}

// Latest returns the newest retained version.
func (h *History) Latest() Graph {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.versions[len(h.versions)-1]
}

// DiffEdges structurally compares two versions and returns the directed
// edges added and removed going from old to new. Untouched vertices keep
// pointer-identical edge trees across versions and are skipped in O(1)
// (EqualRep), so the edge work scales with the difference rather than the
// graph — the temporal-analytics primitive functional snapshots enable.
// The vertex walk itself is linear in the vertex count.
func DiffEdges(old, new Graph) (added, removed []Edge) {
	// Walk both vertex trees in merged key order.
	oldEntries := map[uint32]ctree.Set{}
	old.ForEachVertex(func(u uint32, et ctree.Set) bool {
		oldEntries[u] = et
		return true
	})
	seen := map[uint32]bool{}
	new.ForEachVertex(func(u uint32, etNew ctree.Set) bool {
		seen[u] = true
		etOld, had := oldEntries[u]
		if had && etNew.EqualRep(etOld) {
			// Shared subtree: this vertex is untouched between the
			// versions, skip it in O(1).
			return true
		}
		if !had {
			etNew.ForEach(func(v uint32) bool {
				added = append(added, Edge{Src: u, Dst: v})
				return true
			})
			return true
		}
		etNew.Difference(etOld).ForEach(func(v uint32) bool {
			added = append(added, Edge{Src: u, Dst: v})
			return true
		})
		etOld.Difference(etNew).ForEach(func(v uint32) bool {
			removed = append(removed, Edge{Src: u, Dst: v})
			return true
		})
		return true
	})
	for u, et := range oldEntries {
		if !seen[u] {
			et.ForEach(func(v uint32) bool {
				removed = append(removed, Edge{Src: u, Dst: v})
				return true
			})
		}
	}
	return added, removed
}
