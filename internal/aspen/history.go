package aspen

import (
	"sort"
	"sync"

	"repro/internal/ctree"
)

// History retains every published version of an evolving graph and answers
// time-travel queries — the "historical queries" the paper's conclusion
// singles out as a natural extension, since purely-functional trees keep any
// number of versions alive simply by keeping their roots (§8.1). Retention
// is O(1) per version beyond the structural sharing the trees already pay.
type History struct {
	mu       sync.RWMutex
	stamps   []uint64
	versions []Graph
	vg       *VersionedGraph
}

// NewHistory wraps an initial graph, retaining it as stamp 0.
func NewHistory(g Graph) *History {
	return &History{
		stamps:   []uint64{0},
		versions: []Graph{g},
		vg:       NewVersionedGraph(g),
	}
}

// Versioned exposes the underlying versioned graph (for concurrent readers).
func (h *History) Versioned() *VersionedGraph { return h.vg }

// retain records the just-published version.
func (h *History) retain(stamp uint64, g Graph) {
	h.mu.Lock()
	h.stamps = append(h.stamps, stamp)
	h.versions = append(h.versions, g)
	h.mu.Unlock()
}

// InsertEdges publishes a new version with the batch inserted and retains it.
func (h *History) InsertEdges(edges []Edge) uint64 {
	stamp := h.vg.Update(func(g Graph) Graph { return g.InsertEdges(edges) })
	v := h.vg.Acquire()
	h.retain(stamp, v.Graph)
	h.vg.Release(v)
	return stamp
}

// DeleteEdges publishes a new version with the batch deleted and retains it.
func (h *History) DeleteEdges(edges []Edge) uint64 {
	stamp := h.vg.Update(func(g Graph) Graph { return g.DeleteEdges(edges) })
	v := h.vg.Acquire()
	h.retain(stamp, v.Graph)
	h.vg.Release(v)
	return stamp
}

// Len returns the number of retained versions.
func (h *History) Len() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.stamps)
}

// AsOf returns the newest version with stamp <= s.
func (h *History) AsOf(s uint64) (Graph, bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	i := sort.Search(len(h.stamps), func(i int) bool { return h.stamps[i] > s })
	if i == 0 {
		return Graph{}, false
	}
	return h.versions[i-1], true
}

// Latest returns the newest retained version.
func (h *History) Latest() Graph {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.versions[len(h.versions)-1]
}

// DiffEdges structurally compares two versions and returns the directed
// edges added and removed going from old to new. Untouched vertices keep
// pointer-identical edge trees across versions and are skipped in O(1)
// (EqualRep), so the edge work scales with the difference rather than the
// graph — the temporal-analytics primitive functional snapshots enable.
// The vertex walk itself is linear in the vertex count.
func DiffEdges(old, new Graph) (added, removed []Edge) {
	// Walk both vertex trees in merged key order.
	oldEntries := map[uint32]ctree.Set{}
	old.ForEachVertex(func(u uint32, et ctree.Set) bool {
		oldEntries[u] = et
		return true
	})
	seen := map[uint32]bool{}
	new.ForEachVertex(func(u uint32, etNew ctree.Set) bool {
		seen[u] = true
		etOld, had := oldEntries[u]
		if had && etNew.EqualRep(etOld) {
			// Shared subtree: this vertex is untouched between the
			// versions, skip it in O(1).
			return true
		}
		if !had {
			etNew.ForEach(func(v uint32) bool {
				added = append(added, Edge{Src: u, Dst: v})
				return true
			})
			return true
		}
		etNew.Difference(etOld).ForEach(func(v uint32) bool {
			added = append(added, Edge{Src: u, Dst: v})
			return true
		})
		etOld.Difference(etNew).ForEach(func(v uint32) bool {
			removed = append(removed, Edge{Src: u, Dst: v})
			return true
		})
		return true
	})
	for u, et := range oldEntries {
		if !seen[u] {
			et.ForEach(func(v uint32) bool {
				removed = append(removed, Edge{Src: u, Dst: v})
				return true
			})
		}
	}
	return added, removed
}
