package stinger

import (
	"testing"

	"repro/internal/algos"
	"repro/internal/aspen"
	"repro/internal/xhash"
)

func TestInsertDeleteBasics(t *testing.T) {
	g := New(10)
	if !g.InsertEdge(1, 2) {
		t.Fatal("first insert failed")
	}
	if g.InsertEdge(1, 2) {
		t.Fatal("duplicate insert reported success")
	}
	if g.NumEdges() != 1 || g.Degree(1) != 1 {
		t.Fatal("bookkeeping wrong after insert")
	}
	if !g.DeleteEdge(1, 2) {
		t.Fatal("delete failed")
	}
	if g.DeleteEdge(1, 2) {
		t.Fatal("double delete reported success")
	}
	if g.NumEdges() != 0 || g.Degree(1) != 0 {
		t.Fatal("bookkeeping wrong after delete")
	}
}

func TestTombstoneReuse(t *testing.T) {
	g := New(4)
	for v := uint32(0); v < 3; v++ {
		g.InsertEdge(3, v)
	}
	g.DeleteEdge(3, 1)
	before := g.MemoryBytes()
	g.InsertEdge(3, 1) // must reuse the tombstoned slot, not grow
	if g.MemoryBytes() != before {
		t.Fatal("tombstone slot not reused")
	}
	var nbrs []uint32
	g.ForEachNeighbor(3, func(v uint32) bool { nbrs = append(nbrs, v); return true })
	if len(nbrs) != 3 {
		t.Fatalf("neighbors = %v", nbrs)
	}
}

func TestBlockChaining(t *testing.T) {
	g := New(2)
	const deg = 5 * BlockSize
	for v := uint32(0); v < deg; v++ {
		g.InsertEdge(0, uint32(1000+v)%1) // self edges to vertex... use distinct targets
	}
	// The loop above collapses targets; rebuild properly.
	g = New(deg + 1)
	for v := uint32(1); v <= deg; v++ {
		g.InsertEdge(0, v)
	}
	if g.Degree(0) != deg {
		t.Fatalf("degree = %d", g.Degree(0))
	}
	seen := map[uint32]bool{}
	g.ForEachNeighbor(0, func(v uint32) bool { seen[v] = true; return true })
	if len(seen) != deg {
		t.Fatalf("enumerated %d neighbors", len(seen))
	}
}

func TestBatchModel(t *testing.T) {
	r := xhash.NewRNG(3)
	g := New(64)
	ref := map[uint64]bool{}
	var batch []aspen.Edge
	for i := 0; i < 2000; i++ {
		e := aspen.Edge{Src: uint32(r.Intn(64)), Dst: uint32(r.Intn(64))}
		batch = append(batch, e)
		ref[uint64(e.Src)<<32|uint64(e.Dst)] = true
	}
	g.InsertBatch(batch)
	if int(g.NumEdges()) != len(ref) {
		t.Fatalf("NumEdges = %d, want %d", g.NumEdges(), len(ref))
	}
	for k := range ref {
		u, v := uint32(k>>32), uint32(k)
		found := false
		g.ForEachNeighbor(u, func(x uint32) bool {
			if x == v {
				found = true
				return false
			}
			return true
		})
		if !found {
			t.Fatalf("missing edge (%d,%d)", u, v)
		}
	}
	g.DeleteBatch(batch)
	if g.NumEdges() != 0 {
		t.Fatalf("NumEdges after delete = %d", g.NumEdges())
	}
}

func TestBFSOverStinger(t *testing.T) {
	// The shared algorithm suite must run over the Stinger engine.
	g := New(6)
	for _, e := range []aspen.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 0}, {Src: 1, Dst: 2}, {Src: 2, Dst: 1}, {Src: 2, Dst: 3}, {Src: 3, Dst: 2}} {
		g.InsertEdge(e.Src, e.Dst)
	}
	res := algos.BFS(g, 0, true)
	d := res.Distances()
	want := []int32{0, 1, 2, 3, -1, -1}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("dist[%d] = %d, want %d", i, d[i], want[i])
		}
	}
}

func TestMemoryAccounting(t *testing.T) {
	g := New(100)
	base := g.MemoryBytes()
	if base == 0 {
		t.Fatal("vertex headers should cost memory")
	}
	g.InsertEdge(0, 1)
	if g.MemoryBytes() <= base {
		t.Fatal("block allocation not accounted")
	}
}
