// Package stinger implements a faithful analogue of STINGER's streaming
// graph data structure (Ediger et al., HPEC 2012; paper §7.5): a mutable
// adjacency structure where each vertex's edges are chunked into fixed-size
// blocks chained as a linked list. Updates lock the affected vertex, walk the
// chain to find duplicates or free slots (O(deg) work), and deletions leave
// tombstones. Edge slots carry the weight and the two timestamps STINGER
// stores per edge, which is why its per-edge footprint is large (~145
// bytes/edge reported by the paper).
//
// Unlike Aspen, the structure is mutated in place, so queries must be phased
// with updates (or accept non-serializable reads) — exactly the limitation
// the paper describes for this family of systems.
package stinger

import (
	"sync"
	"sync/atomic"

	"repro/internal/aspen"
	"repro/internal/parallel"
)

// BlockSize is the number of edge slots per block (STINGER's default block
// holds on the order of 14–16 edges).
const BlockSize = 14

// slot mirrors STINGER's edge record: neighbor, weight and two timestamps,
// all 8-byte fields. A negative neighbor is a tombstone.
type slot struct {
	Nbr    int64
	Weight int64
	TSFrst int64
	TSRect int64
}

// block is one chunk of a vertex's adjacency list.
type block struct {
	next  *block
	used  int32 // slots ever used in this block (tombstones included)
	slots [BlockSize]slot
}

// vertex is a per-vertex header with its own lock (fine-grained locking, as
// in STINGER).
type vertex struct {
	mu   sync.Mutex
	deg  int32
	head *block
}

// Graph is a STINGER-style mutable graph over a fixed vertex-id space.
type Graph struct {
	verts  []vertex
	m      atomic.Int64
	blocks atomic.Int64
	now    atomic.Int64 // logical timestamp for edge records
	// ebpool serializes block allocation: STINGER hands out edge blocks
	// from one shared pool, a contention point during parallel ingest.
	ebpool sync.Mutex
}

// allocBlock takes a block from the shared pool (modelled as a locked
// allocation, as in STINGER's ebpool).
func (g *Graph) allocBlock() *block {
	g.ebpool.Lock()
	defer g.ebpool.Unlock()
	g.blocks.Add(1)
	return &block{}
}

// New returns an empty graph with vertex ids in [0, maxVertices).
func New(maxVertices int) *Graph {
	return &Graph{verts: make([]vertex, maxVertices)}
}

// Order returns the vertex-id space size.
func (g *Graph) Order() int { return len(g.verts) }

// NumEdges returns the number of live directed edges.
func (g *Graph) NumEdges() uint64 { return uint64(g.m.Load()) }

// Degree returns the degree of u.
func (g *Graph) Degree(u uint32) int {
	if int(u) >= len(g.verts) {
		return 0
	}
	return int(atomic.LoadInt32(&g.verts[u].deg))
}

// ForEachNeighbor applies f to u's live neighbors (block order) until f
// returns false. Neighbors are traversed by walking the block chain
// sequentially, the access pattern responsible for STINGER's slow
// high-degree traversals (paper §7.5).
func (g *Graph) ForEachNeighbor(u uint32, f func(v uint32) bool) {
	if int(u) >= len(g.verts) {
		return
	}
	for b := g.verts[u].head; b != nil; b = b.next {
		for i := int32(0); i < b.used; i++ {
			if n := b.slots[i].Nbr; n >= 0 {
				if !f(uint32(n)) {
					return
				}
			}
		}
	}
}

// InsertEdge adds the directed edge (u, v), returning false if it already
// existed. O(deg(u)) under u's lock.
func (g *Graph) InsertEdge(u, v uint32) bool {
	vx := &g.verts[u]
	vx.mu.Lock()
	defer vx.mu.Unlock()
	var free *block
	freeIdx := int32(-1)
	var last *block
	for b := vx.head; b != nil; b = b.next {
		for i := int32(0); i < b.used; i++ {
			s := &b.slots[i]
			if s.Nbr == int64(v) {
				s.TSRect = g.now.Add(1)
				return false // duplicate
			}
			if s.Nbr < 0 && free == nil {
				free, freeIdx = b, i
			}
		}
		if b.used < BlockSize && free == nil {
			free, freeIdx = b, b.used
		}
		last = b
	}
	ts := g.now.Add(1)
	if free == nil {
		nb := g.allocBlock()
		if last == nil {
			vx.head = nb
		} else {
			last.next = nb
		}
		free, freeIdx = nb, 0
	}
	if freeIdx == free.used {
		free.used++
	}
	free.slots[freeIdx] = slot{Nbr: int64(v), TSFrst: ts, TSRect: ts}
	atomic.AddInt32(&vx.deg, 1)
	g.m.Add(1)
	return true
}

// DeleteEdge removes the directed edge (u, v) by tombstoning its slot,
// returning whether it existed.
func (g *Graph) DeleteEdge(u, v uint32) bool {
	vx := &g.verts[u]
	vx.mu.Lock()
	defer vx.mu.Unlock()
	for b := vx.head; b != nil; b = b.next {
		for i := int32(0); i < b.used; i++ {
			if b.slots[i].Nbr == int64(v) {
				b.slots[i].Nbr = -1
				atomic.AddInt32(&vx.deg, -1)
				g.m.Add(-1)
				return true
			}
		}
	}
	return false
}

// InsertBatch inserts a batch of directed edges in parallel with per-vertex
// locking (STINGER's batch ingest model).
func (g *Graph) InsertBatch(edges []aspen.Edge) {
	parallel.ForGrain(len(edges), 64, func(i int) {
		g.InsertEdge(edges[i].Src, edges[i].Dst)
	})
}

// DeleteBatch deletes a batch of directed edges in parallel.
func (g *Graph) DeleteBatch(edges []aspen.Edge) {
	parallel.ForGrain(len(edges), 64, func(i int) {
		g.DeleteEdge(edges[i].Src, edges[i].Dst)
	})
}

// MemoryBytes returns the in-memory footprint: the vertex headers plus every
// allocated block (32-byte slots as in STINGER, plus block headers).
func (g *Graph) MemoryBytes() uint64 {
	const vertexBytes = 24               // lock + degree + head pointer
	const blockBytes = 16 + 32*BlockSize // header + slots
	return uint64(len(g.verts))*vertexBytes + uint64(g.blocks.Load())*blockBytes
}
