// Package rmat provides deterministic graph and update-stream generators:
// the rMAT recursive-matrix generator (Chakrabarti et al., SDM 2004) with the
// paper's parameters a=0.5, b=c=0.1, d=0.3 (§7.4), a uniform random
// generator, and the update-stream sampler of §7.3 that draws updates from an
// existing graph so deletions perform non-trivial work.
package rmat

import (
	"repro/internal/aspen"
	"repro/internal/parallel"
	"repro/internal/xhash"
)

// Generator produces rMAT edges deterministically: edge i depends only on
// (seed, i), so streams are reproducible and indexable without state.
type Generator struct {
	// Scale is log2 of the number of vertices.
	Scale int
	// A, B, C are the recursive quadrant probabilities (D = 1-A-B-C).
	A, B, C float64
	// Seed selects the stream.
	Seed uint64
}

// NewGenerator returns a generator with the paper's parameters
// (a=0.5, b=c=0.1, d=0.3).
func NewGenerator(scale int, seed uint64) Generator {
	return Generator{Scale: scale, A: 0.5, B: 0.1, C: 0.1, Seed: seed}
}

// NumVertices returns 2^Scale.
func (g Generator) NumVertices() int { return 1 << g.Scale }

// Edge returns the i-th edge of the stream.
func (g Generator) Edge(i uint64) aspen.Edge {
	r := xhash.NewRNG(xhash.Seeded(g.Seed, i))
	var u, v uint32
	for level := g.Scale - 1; level >= 0; level-- {
		p := r.Float64()
		switch {
		case p < g.A:
			// top-left quadrant: no bits set
		case p < g.A+g.B:
			v |= 1 << uint(level)
		case p < g.A+g.B+g.C:
			u |= 1 << uint(level)
		default:
			u |= 1 << uint(level)
			v |= 1 << uint(level)
		}
	}
	return aspen.Edge{Src: u, Dst: v}
}

// Edges materializes edges [lo, hi) of the stream in parallel.
func (g Generator) Edges(lo, hi uint64) []aspen.Edge {
	out := make([]aspen.Edge, hi-lo)
	parallel.ForGrain(int(hi-lo), 512, func(i int) {
		out[i] = g.Edge(lo + uint64(i))
	})
	return out
}

// Adjacency builds symmetric adjacency lists from the first m generated
// edges (self-loops dropped, both directions added, duplicates removed).
func (g Generator) Adjacency(m uint64) [][]uint32 {
	return BuildAdjacency(g.NumVertices(), g.Edges(0, m))
}

// Uniform produces uniformly random edges over n vertices, deterministic in
// (seed, i).
type Uniform struct {
	N    int
	Seed uint64
}

// Edge returns the i-th edge of the uniform stream.
func (u Uniform) Edge(i uint64) aspen.Edge {
	h := xhash.Seeded(u.Seed, i)
	return aspen.Edge{
		Src: uint32(h % uint64(u.N)),
		Dst: uint32((h >> 32) % uint64(u.N)),
	}
}

// Edges materializes edges [lo, hi) of the stream.
func (u Uniform) Edges(lo, hi uint64) []aspen.Edge {
	out := make([]aspen.Edge, hi-lo)
	parallel.ForGrain(int(hi-lo), 512, func(i int) {
		out[i] = u.Edge(lo + uint64(i))
	})
	return out
}

// BuildAdjacency symmetrizes a directed edge list into sorted, deduplicated
// adjacency lists over n vertices, dropping self-loops — the preprocessing
// the paper applies to all inputs (§7, "we symmetrized the graphs").
func BuildAdjacency(n int, edges []aspen.Edge) [][]uint32 {
	adj := make([][]uint32, n)
	for _, e := range edges {
		if e.Src == e.Dst || int(e.Src) >= n || int(e.Dst) >= n {
			continue
		}
		adj[e.Src] = append(adj[e.Src], e.Dst)
		adj[e.Dst] = append(adj[e.Dst], e.Src)
	}
	parallel.ForGrain(n, 64, func(u int) {
		parallel.SortUint32(adj[u])
		adj[u] = parallel.DedupSortedUint32(adj[u])
	})
	return adj
}

// UpdateStream is a mixed insertion/deletion stream following the §7.3
// methodology: sample edges from the input graph, delete a fraction up
// front, and replay a random permutation of insertions (of the deleted 90%)
// and deletions (of the kept 10%).
type UpdateStream struct {
	// Ops holds the operations in replay order.
	Ops []Update
}

// Update is one stream operation.
type Update struct {
	Edge   aspen.Edge
	Delete bool
}

// SampleUpdateStream draws k distinct edges from g and builds the §7.3
// stream. It also returns the graph with the 90% "insertion" sample already
// removed (the starting state for replay).
func SampleUpdateStream(g aspen.Graph, k int, seed uint64) (aspen.Graph, UpdateStream) {
	// Collect the edge set (u < v canonical form).
	var all []aspen.Edge
	for u := 0; u < g.Order(); u++ {
		uu := uint32(u)
		g.ForEachNeighbor(uu, func(v uint32) bool {
			if uu < v {
				all = append(all, aspen.Edge{Src: uu, Dst: v})
			}
			return true
		})
	}
	r := xhash.NewRNG(seed)
	// Partial Fisher-Yates for the first k positions.
	if k > len(all) {
		k = len(all)
	}
	for i := 0; i < k; i++ {
		j := i + r.Intn(len(all)-i)
		all[i], all[j] = all[j], all[i]
	}
	sample := all[:k]
	nIns := k * 9 / 10
	toInsert := sample[:nIns] // removed now, re-inserted during replay
	toDelete := sample[nIns:] // kept now, deleted during replay
	g2 := g.DeleteEdges(aspen.MakeUndirected(toInsert))
	ops := make([]Update, 0, k)
	for _, e := range toInsert {
		ops = append(ops, Update{Edge: e})
	}
	for _, e := range toDelete {
		ops = append(ops, Update{Edge: e, Delete: true})
	}
	// Random permutation of the replay order.
	for i := len(ops) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		ops[i], ops[j] = ops[j], ops[i]
	}
	return g2, UpdateStream{Ops: ops}
}
