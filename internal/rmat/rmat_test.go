package rmat

import (
	"testing"

	"repro/internal/aspen"
	"repro/internal/ctree"
)

func TestGeneratorDeterministic(t *testing.T) {
	g := NewGenerator(12, 99)
	a := g.Edges(0, 1000)
	b := g.Edges(0, 1000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("generator not deterministic")
		}
	}
	if g.Edge(500) != a[500] {
		t.Fatal("indexed access disagrees with stream")
	}
}

func TestGeneratorRange(t *testing.T) {
	g := NewGenerator(8, 1)
	n := uint32(g.NumVertices())
	for _, e := range g.Edges(0, 5000) {
		if e.Src >= n || e.Dst >= n {
			t.Fatalf("edge (%d,%d) out of range %d", e.Src, e.Dst, n)
		}
	}
}

func TestRMATIsSkewed(t *testing.T) {
	// rMAT with a=0.5 concentrates mass on low ids: the max degree should
	// far exceed the average (power-law-ish skew).
	g := NewGenerator(12, 5)
	adj := g.Adjacency(40_000)
	maxDeg, total := 0, 0
	for _, nbrs := range adj {
		total += len(nbrs)
		if len(nbrs) > maxDeg {
			maxDeg = len(nbrs)
		}
	}
	avg := float64(total) / float64(len(adj))
	if float64(maxDeg) < 4*avg {
		t.Fatalf("max degree %d not skewed vs average %.1f", maxDeg, avg)
	}
}

func TestUniformEdges(t *testing.T) {
	u := Uniform{N: 100, Seed: 3}
	edges := u.Edges(0, 2000)
	counts := make([]int, 100)
	for _, e := range edges {
		if e.Src >= 100 || e.Dst >= 100 {
			t.Fatal("out of range")
		}
		counts[e.Src]++
	}
	// Roughly uniform: every vertex should appear as a source rarely more
	// than 5x the mean.
	for v, c := range counts {
		if c > 100 {
			t.Fatalf("vertex %d appears %d times", v, c)
		}
	}
}

func TestBuildAdjacencySymmetric(t *testing.T) {
	adj := BuildAdjacency(5, []aspen.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 2}, {Src: 0, Dst: 1}})
	if len(adj[0]) != 1 || adj[0][0] != 1 {
		t.Fatalf("adj[0] = %v", adj[0])
	}
	if len(adj[1]) != 2 {
		t.Fatalf("adj[1] = %v", adj[1])
	}
	if len(adj[2]) != 1 { // self-loop dropped, (1,2) symmetrized
		t.Fatalf("adj[2] = %v", adj[2])
	}
}

func TestSampleUpdateStream(t *testing.T) {
	gen := NewGenerator(10, 8)
	adj := gen.Adjacency(20_000)
	g := aspen.FromAdjacency(ctree.Params{B: 32}, adj)
	m0 := g.NumEdges()
	const k = 500
	g2, stream := SampleUpdateStream(g, k, 7)
	if len(stream.Ops) != k {
		t.Fatalf("ops = %d, want %d", len(stream.Ops), k)
	}
	nIns, nDel := 0, 0
	for _, op := range stream.Ops {
		if op.Delete {
			nDel++
		} else {
			nIns++
		}
	}
	if nIns != k*9/10 || nDel != k-k*9/10 {
		t.Fatalf("ins=%d del=%d", nIns, nDel)
	}
	// The start graph removed the insertion sample.
	if g2.NumEdges() != m0-uint64(2*nIns) {
		t.Fatalf("start graph edges = %d, want %d", g2.NumEdges(), m0-uint64(2*nIns))
	}
	// Replaying the whole stream returns to the original edge count minus
	// the deleted 10%.
	for _, op := range stream.Ops {
		ue := aspen.MakeUndirected([]aspen.Edge{op.Edge})
		if op.Delete {
			g2 = g2.DeleteEdges(ue)
		} else {
			g2 = g2.InsertEdges(ue)
		}
	}
	if g2.NumEdges() != m0-uint64(2*nDel) {
		t.Fatalf("final edges = %d, want %d", g2.NumEdges(), m0-uint64(2*nDel))
	}
}
