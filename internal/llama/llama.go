// Package llama implements an analogue of LLAMA (Macko et al., ICDE 2015;
// paper §7.6): a multiversioned CSR. Each ingested batch creates a new
// snapshot holding (a) an O(n) vertex table and (b) an O(k) edge log for the
// batch; a vertex's adjacency list is the chain of its fragments across
// snapshots. Deletions are recorded in per-snapshot deletion vectors
// consulted during traversal. This reproduces the two properties the paper
// attributes to LLAMA: O(n) space per snapshot (so memory grows with the
// number of batches) and traversals that chase fragment chains across
// snapshots (so high-degree traversals are slow).
package llama

import (
	"sort"

	"repro/internal/aspen"
)

// rec is a vertex-table record. It locates the vertex's newest edge
// fragment — the range [start, start+length) of snaps[ownSnap].edges — and
// names the snapshot whose vertex table describes the remainder of the
// chain (prevSnap, -1 when none). Records of untouched vertices are copied
// verbatim between snapshots, so ownSnap stays correct.
type rec struct {
	ownSnap  int32
	start    uint32
	length   uint32
	prevSnap int32
}

var emptyRec = rec{ownSnap: -1, prevSnap: -1}

// snapshot is one version of the graph.
type snapshot struct {
	vtable  []rec    // O(n) vertex table — LLAMA's per-snapshot cost
	edges   []uint32 // this snapshot's edge log
	deleted map[uint64]bool
	degrees []int32
	m       uint64
}

// Graph is a multiversioned CSR over a fixed vertex-id space. A single
// writer appends snapshots; readers traverse the newest snapshot.
type Graph struct {
	n     int
	snaps []*snapshot
}

// New returns an empty graph with vertex ids in [0, maxVertices).
func New(maxVertices int) *Graph {
	s := &snapshot{
		vtable:  make([]rec, maxVertices),
		deleted: map[uint64]bool{},
		degrees: make([]int32, maxVertices),
	}
	for i := range s.vtable {
		s.vtable[i] = emptyRec
	}
	return &Graph{n: maxVertices, snaps: []*snapshot{s}}
}

// FromAdjacency loads a static graph as a single base snapshot.
func FromAdjacency(adj [][]uint32) *Graph {
	g := New(len(adj))
	s := g.snaps[0]
	for u, nbrs := range adj {
		if len(nbrs) == 0 {
			continue
		}
		start := uint32(len(s.edges))
		s.edges = append(s.edges, nbrs...)
		s.vtable[u] = rec{ownSnap: 0, start: start, length: uint32(len(nbrs)), prevSnap: -1}
		s.degrees[u] = int32(len(nbrs))
		s.m += uint64(len(nbrs))
	}
	return g
}

func edgeKey(u, v uint32) uint64 { return uint64(u)<<32 | uint64(v) }

// NumSnapshots returns the number of versions created so far.
func (g *Graph) NumSnapshots() int { return len(g.snaps) }

// Order returns the vertex-id space size.
func (g *Graph) Order() int { return g.n }

// NumEdges returns the number of live directed edges in the newest snapshot.
func (g *Graph) NumEdges() uint64 { return g.snaps[len(g.snaps)-1].m }

// Degree returns the degree of u in the newest snapshot.
func (g *Graph) Degree(u uint32) int {
	if int(u) >= g.n {
		return 0
	}
	return int(g.snaps[len(g.snaps)-1].degrees[u])
}

// ForEachNeighbor applies f to u's live neighbors until f returns false,
// walking the fragment chain newest-to-oldest. A deletion recorded in
// snapshot d hides matching edges only in fragments older than d, so
// re-inserted edges stay visible.
func (g *Graph) ForEachNeighbor(u uint32, f func(v uint32) bool) {
	if int(u) >= g.n {
		return
	}
	r := g.snaps[len(g.snaps)-1].vtable[u]
	var hidden map[uint64]bool
	absorbed := len(g.snaps) // deletion vectors of snapshots >= absorbed are merged
	for r.ownSnap >= 0 {
		// Absorb deletion vectors strictly newer than this fragment.
		for si := absorbed - 1; si > int(r.ownSnap); si-- {
			for k := range g.snaps[si].deleted {
				if uint32(k>>32) == u {
					if hidden == nil {
						hidden = map[uint64]bool{}
					}
					hidden[k] = true
				}
			}
		}
		if int(r.ownSnap) < absorbed {
			absorbed = int(r.ownSnap) + 1
		}
		own := g.snaps[r.ownSnap]
		for i := uint32(0); i < r.length; i++ {
			v := own.edges[r.start+i]
			if hidden != nil && hidden[edgeKey(u, v)] {
				continue
			}
			if !f(v) {
				return
			}
		}
		if r.prevSnap < 0 {
			return
		}
		r = g.snaps[r.prevSnap].vtable[u]
	}
}

// HasEdge reports whether (u, v) is live in the newest snapshot.
func (g *Graph) HasEdge(u, v uint32) bool {
	found := false
	g.ForEachNeighbor(u, func(x uint32) bool {
		if x == v {
			found = true
			return false
		}
		return true
	})
	return found
}

// InsertBatch ingests a batch of directed edge insertions as one snapshot.
// Duplicates (within the batch or against the graph) are skipped.
func (g *Graph) InsertBatch(edges []aspen.Edge) { g.ingest(edges, nil) }

// DeleteBatch ingests a batch of directed edge deletions as one snapshot.
func (g *Graph) DeleteBatch(edges []aspen.Edge) { g.ingest(nil, edges) }

func (g *Graph) ingest(ins, del []aspen.Edge) {
	prev := g.snaps[len(g.snaps)-1]
	prevIdx := int32(len(g.snaps) - 1)
	newIdx := int32(len(g.snaps))
	s := &snapshot{
		vtable:  make([]rec, g.n),
		deleted: map[uint64]bool{},
		degrees: make([]int32, g.n),
		m:       prev.m,
	}
	copy(s.vtable, prev.vtable)
	copy(s.degrees, prev.degrees)

	// Group insertions by source, dropping duplicates.
	bySrc := map[uint32]map[uint32]bool{}
	for _, e := range ins {
		if int(e.Src) >= g.n || int(e.Dst) >= g.n {
			continue
		}
		if g.HasEdge(e.Src, e.Dst) {
			continue
		}
		if bySrc[e.Src] == nil {
			bySrc[e.Src] = map[uint32]bool{}
		}
		bySrc[e.Src][e.Dst] = true
	}
	srcs := make([]uint32, 0, len(bySrc))
	for u := range bySrc {
		srcs = append(srcs, u)
	}
	sort.Slice(srcs, func(i, j int) bool { return srcs[i] < srcs[j] })
	for _, u := range srcs {
		dsts := make([]uint32, 0, len(bySrc[u]))
		for v := range bySrc[u] {
			dsts = append(dsts, v)
		}
		sort.Slice(dsts, func(i, j int) bool { return dsts[i] < dsts[j] })
		start := uint32(len(s.edges))
		s.edges = append(s.edges, dsts...)
		chain := int32(-1)
		if prev.vtable[u].ownSnap >= 0 {
			chain = prevIdx
		}
		s.vtable[u] = rec{ownSnap: newIdx, start: start, length: uint32(len(dsts)), prevSnap: chain}
		s.degrees[u] += int32(len(dsts))
		s.m += uint64(len(dsts))
	}
	for _, e := range del {
		if int(e.Src) >= g.n || !g.HasEdge(e.Src, e.Dst) {
			continue
		}
		k := edgeKey(e.Src, e.Dst)
		if !s.deleted[k] {
			s.deleted[k] = true
			s.degrees[e.Src]--
			s.m--
		}
	}
	g.snaps = append(g.snaps, s)
}

// MemoryBytes returns the analytic footprint: every snapshot pays its O(n)
// vertex table (16-byte records) and degree array plus its edge log and
// deletion vector. Edge-table entries are charged 8 bytes each, as in
// LLAMA's edge table (48-bit vertex id plus flags, stored as 64-bit words);
// this repository stores them as uint32 but accounts for the original
// layout so the memory comparison reflects LLAMA's design.
func (g *Graph) MemoryBytes() uint64 {
	var total uint64
	for _, s := range g.snaps {
		total += uint64(len(s.vtable))*16 + uint64(len(s.degrees))*4 + uint64(len(s.edges))*8
		total += uint64(len(s.deleted)) * 16
	}
	return total
}
