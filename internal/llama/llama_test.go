package llama

import (
	"testing"

	"repro/internal/algos"
	"repro/internal/aspen"
	"repro/internal/xhash"
)

func neighbors(g *Graph, u uint32) []uint32 {
	var out []uint32
	g.ForEachNeighbor(u, func(v uint32) bool { out = append(out, v); return true })
	return out
}

func TestBatchesCreateSnapshots(t *testing.T) {
	g := New(8)
	if g.NumSnapshots() != 1 {
		t.Fatal("expected initial snapshot")
	}
	g.InsertBatch([]aspen.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 0}})
	g.InsertBatch([]aspen.Edge{{Src: 0, Dst: 2}, {Src: 2, Dst: 0}})
	if g.NumSnapshots() != 3 {
		t.Fatalf("snapshots = %d, want 3", g.NumSnapshots())
	}
	if g.NumEdges() != 4 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	// Vertex 0's adjacency spans two fragments across snapshots.
	n0 := neighbors(g, 0)
	if len(n0) != 2 {
		t.Fatalf("neighbors(0) = %v", n0)
	}
}

func TestDeletionHidesOldFragmentOnly(t *testing.T) {
	g := New(4)
	g.InsertBatch([]aspen.Edge{{Src: 0, Dst: 1}})
	g.DeleteBatch([]aspen.Edge{{Src: 0, Dst: 1}})
	if g.NumEdges() != 0 || len(neighbors(g, 0)) != 0 {
		t.Fatal("deletion not applied")
	}
	// Re-insertion after deletion must be visible again.
	g.InsertBatch([]aspen.Edge{{Src: 0, Dst: 1}})
	if g.NumEdges() != 1 || len(neighbors(g, 0)) != 1 {
		t.Fatalf("re-insert invisible: %v", neighbors(g, 0))
	}
}

func TestDuplicateInsertsSkipped(t *testing.T) {
	g := New(4)
	g.InsertBatch([]aspen.Edge{{Src: 0, Dst: 1}, {Src: 0, Dst: 1}})
	g.InsertBatch([]aspen.Edge{{Src: 0, Dst: 1}})
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d, want 1", g.NumEdges())
	}
	if got := neighbors(g, 0); len(got) != 1 {
		t.Fatalf("neighbors = %v", got)
	}
}

func TestModelAgainstReference(t *testing.T) {
	r := xhash.NewRNG(5)
	g := New(32)
	ref := map[uint64]bool{}
	for round := 0; round < 8; round++ {
		var ins []aspen.Edge
		for i := 0; i < 50; i++ {
			e := aspen.Edge{Src: uint32(r.Intn(32)), Dst: uint32(r.Intn(32))}
			ins = append(ins, e)
			ref[uint64(e.Src)<<32|uint64(e.Dst)] = true
		}
		g.InsertBatch(ins)
		var del []aspen.Edge
		for i := 0; i < 20; i++ {
			e := aspen.Edge{Src: uint32(r.Intn(32)), Dst: uint32(r.Intn(32))}
			del = append(del, e)
			delete(ref, uint64(e.Src)<<32|uint64(e.Dst))
		}
		g.DeleteBatch(del)
	}
	if int(g.NumEdges()) != len(ref) {
		t.Fatalf("NumEdges = %d, want %d", g.NumEdges(), len(ref))
	}
	deg := map[uint32]int{}
	for k := range ref {
		u, v := uint32(k>>32), uint32(k)
		if !g.HasEdge(u, v) {
			t.Fatalf("missing (%d,%d)", u, v)
		}
		deg[u]++
	}
	for u := uint32(0); u < 32; u++ {
		if g.Degree(u) != deg[u] {
			t.Fatalf("degree(%d) = %d, want %d", u, g.Degree(u), deg[u])
		}
		if got := neighbors(g, u); len(got) != deg[u] {
			t.Fatalf("neighbors(%d) = %v, want %d", u, got, deg[u])
		}
	}
}

func TestFromAdjacencyAndBFS(t *testing.T) {
	adj := [][]uint32{{1}, {0, 2}, {1, 3}, {2}}
	g := FromAdjacency(adj)
	if g.NumEdges() != 6 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	d := algos.BFS(g, 0, true).Distances()
	want := []int32{0, 1, 2, 3}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("dist[%d] = %d", i, d[i])
		}
	}
}

func TestMemoryGrowsPerSnapshot(t *testing.T) {
	g := New(1000)
	m0 := g.MemoryBytes()
	g.InsertBatch([]aspen.Edge{{Src: 0, Dst: 1}})
	m1 := g.MemoryBytes()
	// Each snapshot costs at least the O(n) vertex table (the LLAMA
	// memory model the paper describes).
	if m1-m0 < 1000*12 {
		t.Fatalf("snapshot cost %d too small for O(n) vertex table", m1-m0)
	}
}
